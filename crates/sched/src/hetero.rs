//! **Extension beyond the paper:** automatic hybrid distribution on
//! *heterogeneous* servers.
//!
//! The paper's conclusion names heterogeneous GPUs/servers as future work.
//! This module extends the AHD search to servers whose ranks have
//! different GPU models: stage times are evaluated per rank with that
//! rank's cost model, and batch-split stages shard their batch
//! *proportionally to member throughput* (instead of evenly), so a 2080 Ti
//! paired with an A6000 receives a smaller shard rather than stalling the
//! stage.
//!
//! The plan vocabulary is unchanged ([`StagePlan`]); the decision gains a
//! per-stage batch split.

use pipebd_models::Workload;
use pipebd_sim::{GpuModel, HostModel, PcieModel, SimTime};

use crate::cost::CostModel;
use crate::plan::{enumerate_hybrid_plans, Stage, StagePlan};

/// A single-node server whose ranks may carry different GPU models.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroServer {
    /// GPU model per rank (`gpus.len()` = device count).
    pub gpus: Vec<GpuModel>,
    /// Shared interconnect.
    pub pcie: PcieModel,
    /// Shared host/loader.
    pub host: HostModel,
}

impl HeteroServer {
    /// A server with the given per-rank GPUs, PCIe 4.0, EPYC host.
    pub fn new(gpus: Vec<GpuModel>) -> Self {
        HeteroServer {
            gpus,
            pcie: PcieModel::gen4_x16(),
            host: HostModel::epyc7302(),
        }
    }

    /// Number of devices.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// Short identifier, e.g. `"2x RTX A6000 + 2x RTX 2080Ti"`.
    pub fn label(&self) -> String {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for g in &self.gpus {
            match counts.iter_mut().find(|(n, _)| *n == g.name) {
                Some((_, c)) => *c += 1,
                None => counts.push((g.name.clone(), 1)),
            }
        }
        counts
            .iter()
            .map(|(n, c)| format!("{c}x {n}"))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

/// The heterogeneous AHD decision: a plan plus per-stage batch shards.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroDecision {
    /// The chosen plan.
    pub plan: StagePlan,
    /// For each stage, the batch shard assigned to each member (same order
    /// as `stage.devices`; sums to the global batch).
    pub splits: Vec<Vec<usize>>,
    /// Estimated steady-state step period.
    pub estimate: SimTime,
}

/// Time one member of a stage takes for its shard on its own GPU.
fn member_time(cost: &CostModel, workload: &Workload, stage: &Stage, shard: usize) -> SimTime {
    let mut t = SimTime::ZERO;
    for b in stage.blocks() {
        let desc = &workload.model.blocks[b];
        t += cost.teacher_time(desc, shard);
        t += cost.student_time(desc, shard);
        t += cost.update_time(desc);
    }
    t
}

/// Splits `batch` across the stage's members proportionally to their
/// measured throughput on this stage (largest-remainder rounding).
///
/// Every member gets at least one sample when `batch >= width`; with fewer
/// samples than members (`batch < width`, e.g. batch 1 on a wide stage)
/// only the `batch` fastest members receive a sample and the rest sit the
/// round out with a zero shard. Degenerate throughput probes (all-zero or
/// non-finite speeds) fall back to an even split.
pub fn proportional_split(
    costs: &[CostModel],
    workload: &Workload,
    stage: &Stage,
    batch: usize,
) -> Vec<usize> {
    let m = stage.width();
    if m == 1 {
        return vec![batch];
    }
    // Throughput probe at the even split (at least one sample so the cost
    // model sees a well-defined occupancy).
    let even = batch.div_ceil(m).max(1);
    let mut speeds: Vec<f64> = stage
        .devices
        .iter()
        .map(|&d| {
            let t = member_time(&costs[d], workload, stage, even).as_secs_f64();
            if t <= 0.0 {
                1.0
            } else {
                even as f64 / t
            }
        })
        .collect();
    let total_speed: f64 = speeds.iter().sum();
    if !total_speed.is_finite() || total_speed <= 0.0 {
        speeds = vec![1.0; m];
    }
    let total_speed: f64 = speeds.iter().sum();
    if batch < m {
        // Not every member can receive a sample: the fastest `batch`
        // members get one each (stable on ties: lower member index wins).
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            speeds[b]
                .partial_cmp(&speeds[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut alloc = vec![0usize; m];
        for &i in order.iter().take(batch) {
            alloc[i] = 1;
        }
        return alloc;
    }
    // Largest-remainder allocation with a floor of 1 sample.
    let mut shares: Vec<(usize, f64)> = speeds
        .iter()
        .enumerate()
        .map(|(i, s)| (i, batch as f64 * s / total_speed))
        .collect();
    let mut alloc: Vec<usize> = shares
        .iter()
        .map(|(_, x)| (x.floor() as usize).max(1))
        .collect();
    let mut assigned: usize = alloc.iter().sum();
    // Fix rounding drift: hand out remaining samples by largest remainder,
    // or claw back from the smallest remainders (terminates because the
    // floor-of-1 total never exceeds `batch` when every member can shrink
    // to 1 and `batch >= m`).
    shares.sort_by(|a, b| {
        let ra = a.1 - a.1.floor();
        let rb = b.1 - b.1.floor();
        rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut i = 0;
    while assigned < batch {
        alloc[shares[i % shares.len()].0] += 1;
        assigned += 1;
        i += 1;
    }
    let mut j = shares.len();
    while assigned > batch {
        j = if j == 0 { shares.len() } else { j } - 1;
        let idx = shares[j].0;
        if alloc[idx] > 1 {
            alloc[idx] -= 1;
            assigned -= 1;
        }
    }
    alloc
}

/// Steady-state time of one stage with proportional sharding.
pub fn stage_time_hetero(
    costs: &[CostModel],
    workload: &Workload,
    server: &HeteroServer,
    stage: &Stage,
    batch: usize,
) -> (SimTime, Vec<usize>) {
    let split = proportional_split(costs, workload, stage, batch);
    let mut worst = SimTime::ZERO;
    for (member, &d) in stage.devices.iter().enumerate() {
        if split[member] == 0 {
            // A member without samples does no work this round (batch
            // smaller than the stage width).
            continue;
        }
        let mut t = member_time(&costs[d], workload, stage, split[member]);
        if stage.first_block == 0 {
            let bytes = split[member] as u64 * workload.dataset.sample_bytes();
            t += server.host.consume_time(split[member], bytes, &server.pcie);
        }
        if t > worst {
            worst = t;
        }
    }
    if stage.width() > 1 {
        let grad_bytes: u64 = stage
            .blocks()
            .map(|b| 4 * workload.model.blocks[b].student_params)
            .sum();
        worst += server.pcie.allreduce_time(grad_bytes, stage.width());
    }
    (worst, split)
}

/// Exhaustive heterogeneous AHD search: same plan space as the paper's
/// AHD, per-rank cost models, proportional batch splits.
pub fn search(workload: &Workload, server: &HeteroServer, batch: usize) -> HeteroDecision {
    let costs: Vec<CostModel> = server
        .gpus
        .iter()
        .map(|g| CostModel::new(g.clone()))
        .collect();
    let plans = enumerate_hybrid_plans(workload.num_blocks(), server.num_gpus());
    let mut best: Option<HeteroDecision> = None;
    for plan in plans {
        let mut period = SimTime::ZERO;
        let mut splits = Vec::with_capacity(plan.stages.len());
        for stage in &plan.stages {
            let (t, split) = stage_time_hetero(&costs, workload, server, stage, batch);
            if t > period {
                period = t;
            }
            splits.push(split);
        }
        if best.as_ref().map_or(true, |b| period < b.estimate) {
            best = Some(HeteroDecision {
                plan,
                splits,
                estimate: period,
            });
        }
    }
    best.expect("plan space is never empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profiler;
    use pipebd_sim::HardwareConfig;

    fn mixed_server() -> HeteroServer {
        HeteroServer::new(vec![
            GpuModel::a6000(),
            GpuModel::a6000(),
            GpuModel::rtx2080ti(),
            GpuModel::rtx2080ti(),
        ])
    }

    #[test]
    fn label_groups_gpu_types() {
        assert_eq!(mixed_server().label(), "2x RTX A6000 + 2x RTX 2080Ti");
        let homo = HeteroServer::new(vec![GpuModel::a6000(); 4]);
        assert_eq!(homo.label(), "4x RTX A6000");
    }

    #[test]
    fn homogeneous_degenerates_to_paper_ahd() {
        // With identical GPUs the heterogeneous search must pick the same
        // plan as the paper's AHD (splits even up to rounding).
        let w = Workload::nas_imagenet();
        let hw = HardwareConfig::a6000_server(4);
        let homo = HeteroServer {
            gpus: vec![hw.gpu.clone(); 4],
            pcie: hw.pcie.clone(),
            host: hw.host.clone(),
        };
        let hetero = search(&w, &homo, 256);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        let paper = crate::ahd::search(&w, &table, &hw, 256);
        assert_eq!(hetero.plan, paper.plan);
        for split in &hetero.splits {
            let max = *split.iter().max().unwrap();
            let min = *split.iter().min().unwrap();
            assert!(max - min <= 1, "even split expected, got {split:?}");
        }
    }

    #[test]
    fn faster_gpu_receives_larger_shard() {
        let w = Workload::nas_imagenet();
        let server = mixed_server();
        let costs: Vec<CostModel> = server
            .gpus
            .iter()
            .map(|g| CostModel::new(g.clone()))
            .collect();
        // A stage spanning all four devices: ranks 0-1 are A6000s.
        let stage = Stage {
            first_block: 0,
            num_blocks: 1,
            devices: vec![0, 1, 2, 3],
        };
        let split = proportional_split(&costs, &w, &stage, 256);
        assert_eq!(split.iter().sum::<usize>(), 256);
        assert!(
            split[0] > split[2],
            "A6000 shard {} should exceed 2080Ti shard {}",
            split[0],
            split[2]
        );
        assert_eq!(split[0], split[1], "equal GPUs get equal shards");
    }

    #[test]
    fn proportional_split_beats_even_split() {
        let w = Workload::nas_imagenet();
        let server = mixed_server();
        let costs: Vec<CostModel> = server
            .gpus
            .iter()
            .map(|g| CostModel::new(g.clone()))
            .collect();
        let stage = Stage {
            first_block: 0,
            num_blocks: 2,
            devices: vec![0, 1, 2, 3],
        };
        let (t_prop, _) = stage_time_hetero(&costs, &w, &server, &stage, 256);
        // Even split: slowest member (2080Ti at 64) bounds the stage.
        let even = 256usize.div_ceil(4);
        let t_even = stage
            .devices
            .iter()
            .map(|&d| member_time(&costs[d], &w, &stage, even))
            .max()
            .unwrap();
        assert!(
            t_prop.as_secs_f64() < t_even.as_secs_f64(),
            "proportional {t_prop} should beat even {t_even}"
        );
    }

    #[test]
    fn search_is_deterministic_and_valid() {
        let w = Workload::nas_cifar10();
        let server = mixed_server();
        let a = search(&w, &server, 256);
        let b = search(&w, &server, 256);
        assert_eq!(a, b);
        a.plan.validate().unwrap();
        assert_eq!(a.splits.len(), a.plan.stages.len());
        for (stage, split) in a.plan.stages.iter().zip(a.splits.iter()) {
            assert_eq!(split.len(), stage.width());
            assert_eq!(split.iter().sum::<usize>(), 256);
        }
    }

    #[test]
    fn batch_smaller_than_width_gives_fastest_members_one_sample() {
        // batch=1 on a 4-wide stage used to hang the claw-back loop (every
        // alloc already at the floor of 1); now the fastest member gets the
        // single sample and the others sit out.
        let w = Workload::nas_imagenet();
        let server = mixed_server();
        let costs: Vec<CostModel> = server
            .gpus
            .iter()
            .map(|g| CostModel::new(g.clone()))
            .collect();
        let stage = Stage {
            first_block: 0,
            num_blocks: 1,
            devices: vec![0, 1, 2, 3],
        };
        let split = proportional_split(&costs, &w, &stage, 1);
        assert_eq!(split.iter().sum::<usize>(), 1);
        assert_eq!(split[0], 1, "the A6000 (rank 0) must take the sample");
        let split3 = proportional_split(&costs, &w, &stage, 3);
        assert_eq!(split3.iter().sum::<usize>(), 3);
        assert_eq!(
            split3,
            vec![1, 1, 1, 0],
            "three samples go to the three fastest (ties break low-rank)"
        );
        // The stage time stays well-defined: zero-shard members are idle.
        let (t, split) = stage_time_hetero(&costs, &w, &server, &stage, 1);
        assert!(t > SimTime::ZERO);
        assert_eq!(split.iter().sum::<usize>(), 1);
    }

    #[test]
    fn search_handles_batch_one_and_more_ranks_than_blocks() {
        // More ranks than blocks forces wide stages; batch=1 then exercises
        // the zero-shard path end to end through the search.
        let w = Workload::synthetic(2, false);
        let server = mixed_server(); // 4 ranks, 2 blocks
        let d = search(&w, &server, 1);
        d.plan.validate().unwrap();
        for (stage, split) in d.plan.stages.iter().zip(d.splits.iter()) {
            assert_eq!(split.len(), stage.width());
            assert_eq!(split.iter().sum::<usize>(), 1);
        }
        assert!(d.estimate > SimTime::ZERO);
    }

    #[test]
    fn zero_throughput_rank_still_gets_a_floor_share() {
        // A rank whose cost model predicts (effectively) zero throughput
        // must not starve the split of samples or produce NaN shares: it
        // receives the floor of one sample, the rest go to real ranks.
        let w = Workload::nas_imagenet();
        let mut dead = GpuModel::a6000();
        dead.peak_flops = 1.0; // ~zero throughput
        dead.mem_bw = 1.0;
        let server = HeteroServer::new(vec![
            GpuModel::a6000(),
            GpuModel::a6000(),
            GpuModel::a6000(),
            dead,
        ]);
        let costs: Vec<CostModel> = server
            .gpus
            .iter()
            .map(|g| CostModel::new(g.clone()))
            .collect();
        let stage = Stage {
            first_block: 0,
            num_blocks: 1,
            devices: vec![0, 1, 2, 3],
        };
        let split = proportional_split(&costs, &w, &stage, 64);
        assert_eq!(split.iter().sum::<usize>(), 64);
        assert_eq!(split[3], 1, "dead rank is clamped to the floor share");
        assert!(split[0] > 16, "live ranks absorb the dead rank's load");
    }

    #[test]
    fn mixed_server_estimate_between_pure_servers() {
        // A 2xA6000+2x2080Ti server should be no faster than 4x A6000 and
        // no slower than 4x 2080Ti.
        let w = Workload::compression_cifar10();
        let fast = search(&w, &HeteroServer::new(vec![GpuModel::a6000(); 4]), 256);
        let slow = search(&w, &HeteroServer::new(vec![GpuModel::rtx2080ti(); 4]), 256);
        let mixed = search(&w, &mixed_server(), 256);
        assert!(fast.estimate <= mixed.estimate);
        assert!(mixed.estimate <= slow.estimate);
    }
}
