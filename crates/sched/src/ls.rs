//! The layerwise-scheduling (LS) baseline of Blakeney et al. (IEEE TPDS
//! 2021): each block's training is an independent task (teacher prefix
//! from the input up to the block, plus the student), and tasks are
//! bin-packed onto devices.
//!
//! LS runs each device at the full batch size (good utilization — it beats
//! DP on CIFAR-10) but keeps the redundant teacher prefixes and, with few
//! blocks of very unequal cost, suffers load imbalance (it loses to DP on
//! ImageNet) — both effects the paper reports.

use pipebd_models::Workload;
use pipebd_sim::SimTime;

use crate::profile::ProfileTable;

/// The outcome of LS bin packing.
#[derive(Debug, Clone, PartialEq)]
pub struct LsAssignment {
    /// `device_blocks[d]` = blocks trained by device `d`, in ascending
    /// order (the device executes them sequentially every step).
    pub device_blocks: Vec<Vec<usize>>,
    /// Estimated per-step cost of every device.
    pub device_cost: Vec<SimTime>,
    /// Estimated makespan (max device cost).
    pub makespan: SimTime,
}

/// Per-step cost of block `b`'s task at full batch: the teacher prefix
/// `0..=b` plus the student and its update.
pub fn task_cost(table: &ProfileTable, batch: usize, b: usize) -> SimTime {
    let prefix: SimTime = (0..=b).map(|k| table.teacher_time(k, batch)).sum();
    prefix + table.student_time(b, batch) + table.update_time(b)
}

/// Longest-processing-time bin packing of block tasks onto `num_devices`
/// devices.
pub fn pack(
    workload: &Workload,
    table: &ProfileTable,
    num_devices: usize,
    global_batch: usize,
) -> LsAssignment {
    let b = workload.num_blocks();
    let mut tasks: Vec<(usize, SimTime)> = (0..b)
        .map(|i| (i, task_cost(table, global_batch, i)))
        .collect();
    // LPT: heaviest first; ties broken by block index for determinism.
    tasks.sort_by(|a, c| c.1.cmp(&a.1).then(a.0.cmp(&c.0)));

    let mut device_blocks = vec![Vec::new(); num_devices];
    let mut device_cost = vec![SimTime::ZERO; num_devices];
    for (block, cost) in tasks {
        let d = (0..num_devices)
            .min_by_key(|&d| (device_cost[d], d))
            .expect("at least one device");
        device_blocks[d].push(block);
        device_cost[d] += cost;
    }
    for blocks in &mut device_blocks {
        blocks.sort_unstable();
    }
    let makespan = device_cost.iter().copied().max().unwrap_or(SimTime::ZERO);
    LsAssignment {
        device_blocks,
        device_cost,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::profile::Profiler;
    use pipebd_sim::HardwareConfig;

    fn assignment(w: &Workload) -> LsAssignment {
        let hw = HardwareConfig::a6000_server(4);
        let table = Profiler::new(CostModel::new(hw.gpu)).profile(&w.model, 256, 4);
        pack(w, &table, 4, 256)
    }

    #[test]
    fn every_block_assigned_exactly_once() {
        let w = Workload::compression_cifar10();
        let a = assignment(&w);
        let mut all: Vec<usize> = a.device_blocks.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn later_blocks_cost_more_through_prefixes() {
        let w = Workload::compression_cifar10();
        let hw = HardwareConfig::a6000_server(4);
        let table = Profiler::new(CostModel::new(hw.gpu)).profile(&w.model, 256, 4);
        // Prefix redundancy: the task for the last block strictly exceeds
        // the first block's.
        assert!(task_cost(&table, 256, 12) > task_cost(&table, 256, 0));
    }

    #[test]
    fn lpt_is_no_worse_than_one_device() {
        let w = Workload::compression_cifar10();
        let a = assignment(&w);
        let total: SimTime = a.device_cost.iter().copied().sum();
        assert!(a.makespan.as_secs_f64() >= total.as_secs_f64() / 4.0 - 1e-12);
        assert!(a.makespan < total, "packing must beat serial execution");
    }

    #[test]
    fn imbalance_on_imagenet_nas() {
        // With only six very unequal blocks, LS ends up badly imbalanced —
        // the paper's explanation for LS losing to DP on ImageNet.
        let w = Workload::nas_imagenet();
        let a = assignment(&w);
        let min = a.device_cost.iter().copied().min().unwrap();
        let max = a.makespan;
        assert!(
            max.as_secs_f64() > 1.3 * min.as_secs_f64().max(1e-12),
            "expected visible imbalance, got min {min} max {max}"
        );
    }

    #[test]
    fn deterministic_packing() {
        let w = Workload::nas_cifar10();
        assert_eq!(assignment(&w), assignment(&w));
    }
}
