//! Property-based tests for the scheduling crate: the plan space is
//! exactly the closed-form composition product, every enumerated plan is
//! structurally valid, the LS packing covers blocks exactly once, and the
//! analytic period is the max stage time.

use pipebd_models::Workload;
use pipebd_sched::{
    compositions, enumerate_hybrid_plans, estimate_period, hybrid_plan_count, ls, stage_time,
    CostModel, Profiler, StagePlan,
};
use pipebd_sim::{GpuModel, HardwareConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn compositions_are_exact(total in 1usize..10, parts in 1usize..6) {
        let comps = compositions(total, parts);
        for c in &comps {
            prop_assert_eq!(c.len(), parts);
            prop_assert_eq!(c.iter().sum::<usize>(), total);
            prop_assert!(c.iter().all(|&x| x > 0));
        }
        // No duplicates.
        let mut sorted = comps.clone();
        sorted.sort();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), comps.len());
    }

    #[test]
    fn plan_enumeration_matches_closed_form(blocks in 1usize..10, devices in 1usize..7) {
        let plans = enumerate_hybrid_plans(blocks, devices);
        prop_assert_eq!(plans.len(), hybrid_plan_count(blocks, devices));
        for p in &plans {
            prop_assert!(p.validate().is_ok(), "invalid plan {p}");
        }
        // No duplicates in the space.
        let mut seen = std::collections::HashSet::new();
        for p in &plans {
            prop_assert!(seen.insert(format!("{p}")), "duplicate plan {p}");
        }
    }

    #[test]
    fn contiguous_plan_always_covers(blocks in 1usize..20, devices in 1usize..8) {
        prop_assume!(blocks >= devices);
        let p = StagePlan::contiguous(blocks, devices).unwrap();
        p.validate().unwrap();
        // Every block belongs to exactly one stage.
        for b in 0..blocks {
            prop_assert!(p.stage_of_block(b).is_some());
        }
        // Stage sizes differ by at most one (balanced split).
        let sizes: Vec<usize> = p.stages.iter().map(|s| s.num_blocks).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn ls_pack_is_a_partition(blocks in 2usize..14, devices in 1usize..6, batch in 32usize..512) {
        let w = Workload::synthetic(blocks, false);
        let table = Profiler::new(CostModel::new(GpuModel::a6000()))
            .profile(&w.model, batch, devices);
        let a = ls::pack(&w, &table, devices, batch);
        let mut all: Vec<usize> = a.device_blocks.iter().flatten().copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..blocks).collect::<Vec<_>>());
        // Makespan bounds: at least total/devices, at least the max task.
        let total: f64 = a.device_cost.iter().map(|c| c.as_secs_f64()).sum();
        prop_assert!(a.makespan.as_secs_f64() >= total / devices as f64 - 1e-12);
    }

    #[test]
    fn estimated_period_is_max_stage_time(blocks in 4usize..10) {
        let w = Workload::synthetic(blocks, true);
        let hw = HardwareConfig::a6000_server(4);
        let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
        for plan in enumerate_hybrid_plans(blocks, 4).into_iter().take(24) {
            let per_stage = plan
                .stages
                .iter()
                .map(|s| stage_time(s, &table, &w, &hw, 256))
                .max()
                .unwrap();
            prop_assert_eq!(estimate_period(&plan, &table, &w, &hw, 256), per_stage);
        }
    }

    #[test]
    fn wider_stages_never_increase_memory_batch(width in 1usize..5) {
        // device_batch is monotone non-increasing in width.
        let s = pipebd_sched::Stage {
            first_block: 0,
            num_blocks: 1,
            devices: (0..width).collect(),
        };
        let wider = pipebd_sched::Stage {
            first_block: 0,
            num_blocks: 1,
            devices: (0..width + 1).collect(),
        };
        prop_assert!(wider.device_batch(256) <= s.device_batch(256));
    }
}
