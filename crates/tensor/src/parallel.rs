//! Pool plumbing for the parallel compute plane.
//!
//! The blocked kernels (`gemm`, `im2col`) decompose their work across a
//! work-stealing [`crossbeam::pool::ThreadPool`] when one is *active* on
//! the calling thread. Activity is resolved per call, in order:
//!
//! 1. the innermost [`install`]ed pool (the threaded executor installs a
//!    per-device pool sized by `sched`'s stage widths, so stage
//!    concurrency and intra-stage parallelism share one host budget);
//! 2. else the process-global pool, sized by `PIPEBD_POOL` (panicking on
//!    an unparsable value — mislabeled scaling artifacts must fail
//!    loudly, like `PIPEBD_SIMD`) or the machine's available
//!    parallelism. A budget of 1 means no pool is ever created — the
//!    default on a single-vCPU host is exactly the old serial plane.
//!
//! A pool of size `w` is `w - 1` worker threads plus the kernel-calling
//! thread, which helps execute tasks inside the scope. Installing a pool
//! of size 1 forces serial execution regardless of the global default —
//! that is how the determinism tests pin their baseline.
//!
//! **Determinism contract:** every parallel decomposition in this crate
//! partitions the *output* so that each output element is produced, in
//! full, by exactly one task — row/column bands of C for GEMM,
//! `(batch, group)` blocks for the convolutions, `dW` row bands for the
//! weight gradient — and each task runs the unchanged serial kernel over
//! its partition. A float is never split across workers and partial sums
//! are never combined across workers, so each output element's fma chain
//! is the same instruction sequence the serial kernel executes, and
//! parallel results are **bitwise identical** to serial results for
//! every pool size. The `parallel_determinism` test battery asserts
//! exactly this.

use std::cell::{Cell, RefCell};
use std::sync::{Arc, OnceLock};

pub use crossbeam::pool::PoolStats;
use crossbeam::pool::{Scope, ThreadPool};

/// A shareable handle to a work-stealing pool sized for kernel work.
#[derive(Clone, Debug)]
pub struct ComputePool {
    inner: Arc<ThreadPool>,
}

impl ComputePool {
    /// Creates a pool with `size` compute lanes (`size - 1` worker
    /// threads; the kernel-calling thread is the last lane). `size <= 1`
    /// spawns no threads and makes every kernel run serially.
    pub fn new(size: usize) -> Self {
        ComputePool {
            inner: Arc::new(ThreadPool::new(size)),
        }
    }

    /// Number of compute lanes.
    pub fn size(&self) -> usize {
        self.inner.size()
    }

    /// Snapshots the pool's steal/park/wake counters (the trace plane
    /// reads these after a run; they never affect kernel results).
    pub fn stats(&self) -> PoolStats {
        self.inner.stats()
    }

    /// Runs `op` with a [`PoolScope`] for spawning kernel tasks; returns
    /// after every spawned task has finished.
    pub(crate) fn run_scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&PoolScope<'_, 'scope>) -> R,
    {
        self.inner.scope(|s| op(&PoolScope { inner: s }))
    }
}

/// Scope handle passed to kernel decompositions; wraps the raw pool
/// scope so every task body runs with the in-task marker set (a task
/// that re-enters a parallel kernel entry runs it serially instead of
/// nesting scopes).
pub(crate) struct PoolScope<'a, 'scope> {
    inner: &'a Scope<'scope>,
}

impl<'scope> PoolScope<'_, 'scope> {
    /// Spawns one kernel task.
    pub(crate) fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(move |_| {
            // Restore on unwind too: the panic is caught by the pool and
            // re-raised from `scope`, and this thread (a worker, or the
            // caller helping inline) keeps running other work.
            struct Reset(bool);
            impl Drop for Reset {
                fn drop(&mut self) {
                    IN_POOL_TASK.with(|flag| flag.set(self.0));
                }
            }
            let _reset = Reset(IN_POOL_TASK.with(|flag| flag.replace(true)));
            f();
        });
    }
}

thread_local! {
    /// Stack of [`install`]ed pools on this thread (innermost last).
    static INSTALLED: RefCell<Vec<ComputePool>> = const { RefCell::new(Vec::new()) };
    /// Set while a pool task body runs, to suppress nested decomposition.
    static IN_POOL_TASK: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with `pool` as this thread's active compute pool (innermost
/// wins; restored on exit, panic included).
pub fn install<R>(pool: &ComputePool, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            INSTALLED.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    INSTALLED.with(|s| s.borrow_mut().push(pool.clone()));
    let _guard = Guard;
    f()
}

static GLOBAL: OnceLock<Option<ComputePool>> = OnceLock::new();

/// The process-default pool budget: `PIPEBD_POOL` if set (panics on an
/// unparsable or zero value — a silently mislabeled scaling run is worse
/// than a crash), else the machine's available parallelism.
pub fn default_pool_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| match std::env::var("PIPEBD_POOL") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => panic!("pipebd_tensor: invalid PIPEBD_POOL={v:?} (expected a positive integer)"),
        },
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// The global pool, created lazily on first parallel kernel call; `None`
/// when the default budget is 1 (no threads are ever spawned).
fn global_pool() -> Option<ComputePool> {
    GLOBAL
        .get_or_init(|| {
            let size = default_pool_size();
            (size > 1).then(|| ComputePool::new(size))
        })
        .clone()
}

/// The pool a kernel on this thread should decompose onto, if any:
/// `None` means run serially (no pool, a size-1 pool installed, or the
/// caller is itself a pool task).
pub(crate) fn active_pool() -> Option<ComputePool> {
    if IN_POOL_TASK.with(Cell::get) {
        return None;
    }
    let installed = INSTALLED.with(|s| s.borrow().last().cloned());
    match installed {
        Some(p) => (p.size() > 1).then_some(p),
        None => global_pool(),
    }
}

/// The parallel width kernels on this thread currently see (1 = serial).
pub fn active_width() -> usize {
    active_pool().map_or(1, |p| p.size())
}

/// Applies `f` to near-equal contiguous chunks of `data` in parallel,
/// one chunk per pool lane, when a pool is active and the chunks would
/// be at least `min_chunk` long; otherwise applies `f` to all of `data`
/// on the calling thread.
///
/// Intended for *elementwise* maps (activations and the like): chunk
/// boundaries must not affect the value any element receives, which
/// keeps results bitwise identical to the serial application.
pub fn for_each_chunk(data: &mut [f32], min_chunk: usize, f: impl Fn(&mut [f32]) + Send + Sync) {
    let pool = active_pool();
    let width = pool.as_ref().map_or(1, ComputePool::size);
    let chunk = data.len().div_ceil(width.max(1)).max(min_chunk.max(1));
    if width <= 1 || chunk >= data.len() {
        f(data);
        return;
    }
    let pool = pool.expect("width > 1 implies a pool");
    let f = &f;
    pool.run_scope(|s| {
        for piece in data.chunks_mut(chunk) {
            s.spawn(move || f(piece));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_stacks_and_restores() {
        let serial = ComputePool::new(1);
        let wide = ComputePool::new(3);
        install(&wide, || {
            assert_eq!(active_width(), 3);
            install(&serial, || {
                // Inner size-1 pool forces serial even under a wide one.
                assert_eq!(active_width(), 1);
                assert!(active_pool().is_none());
            });
            assert_eq!(active_width(), 3);
        });
    }

    #[test]
    fn tasks_see_serial_ambient() {
        let wide = ComputePool::new(2);
        install(&wide, || {
            wide.run_scope(|s| {
                s.spawn(|| {
                    // A kernel called from inside a task must not nest.
                    assert!(active_pool().is_none());
                });
            });
        });
    }

    #[test]
    fn for_each_chunk_covers_every_element() {
        let pool = ComputePool::new(4);
        let mut data = vec![1.0f32; 1003];
        install(&pool, || {
            for_each_chunk(&mut data, 16, |chunk| {
                for v in chunk.iter_mut() {
                    *v += 1.0;
                }
            });
        });
        assert!(data.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn for_each_chunk_respects_min_chunk() {
        let pool = ComputePool::new(4);
        let mut data = vec![0.0f32; 8];
        install(&pool, || {
            // min_chunk larger than the data: must run as one piece.
            for_each_chunk(&mut data, 64, |chunk| {
                assert_eq!(chunk.len(), 8);
            });
        });
    }
}
