//! Dense matrix products and bias helpers.
//!
//! These are the only "BLAS-like" kernels the NN layers need. All matrices
//! are rank-2 tensors in row-major order. The three products dispatch on
//! the process [`KernelPolicy`]: the naive streaming loops are retained as
//! the oracle, the default routes through the packed blocked GEMM (`gemm`
//! module). Transposed variants never materialize a transpose under either
//! policy.

use crate::error::TensorError;
use crate::gemm::gemm_strided;
use crate::kernel::{kernel_policy, KernelPolicy};
use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self @ other` for rank-2 tensors `[m, k] x [k, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank-2,
    /// and [`TensorError::ShapeMismatch`] if the inner dimensions differ.
    ///
    /// # Example
    ///
    /// ```
    /// use pipebd_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), pipebd_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let i = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&i)?, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_with(other, kernel_policy())
    }

    /// [`Tensor::matmul`] with an explicit [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_with(&self, other: &Tensor, policy: KernelPolicy) -> Result<Tensor, TensorError> {
        let (m, k) = rank2(self, "matmul")?;
        let (k2, n) = rank2(other, "matmul")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![m, k],
                actual: vec![k2, n],
                op: "matmul",
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        match policy {
            KernelPolicy::Blocked => {
                gemm_strided(m, n, k, a, k, 1, b, n, 1, &mut out, false);
            }
            KernelPolicy::Naive => {
                // i-k-j loop order: streams through b rows, cache friendly.
                for i in 0..m {
                    for p in 0..k {
                        let aik = a[i * k + p];
                        if aik == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n..(p + 1) * n];
                        let orow = &mut out[i * n..(i + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += aik * bv;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `selfᵀ @ other` for rank-2 tensors `[k, m]ᵀ x [k, n]`.
    ///
    /// Used by linear-layer weight gradients without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_t_a(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_t_a_with(other, kernel_policy())
    }

    /// [`Tensor::matmul_t_a`] with an explicit [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_t_a_with(
        &self,
        other: &Tensor,
        policy: KernelPolicy,
    ) -> Result<Tensor, TensorError> {
        let (k, m) = rank2(self, "matmul_t_a")?;
        let (k2, n) = rank2(other, "matmul_t_a")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![k, m],
                actual: vec![k2, n],
                op: "matmul_t_a",
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        match policy {
            KernelPolicy::Blocked => {
                // A is stored [k, m]; strides express the transpose.
                gemm_strided(m, n, k, a, 1, m, b, n, 1, &mut out, false);
            }
            KernelPolicy::Naive => {
                for p in 0..k {
                    let arow = &a[p * m..(p + 1) * m];
                    let brow = &b[p * n..(p + 1) * n];
                    for (i, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let orow = &mut out[i * n..(i + 1) * n];
                        for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// `self @ otherᵀ` for rank-2 tensors `[m, k] x [n, k]ᵀ`.
    ///
    /// Used by linear-layer input gradients without materializing the
    /// transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_b_t(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.matmul_b_t_with(other, kernel_policy())
    }

    /// [`Tensor::matmul_b_t`] with an explicit [`KernelPolicy`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    pub fn matmul_b_t_with(
        &self,
        other: &Tensor,
        policy: KernelPolicy,
    ) -> Result<Tensor, TensorError> {
        let (m, k) = rank2(self, "matmul_b_t")?;
        let (n, k2) = rank2(other, "matmul_b_t")?;
        if k != k2 {
            return Err(TensorError::ShapeMismatch {
                expected: vec![m, k],
                actual: vec![n, k2],
                op: "matmul_b_t",
            });
        }
        let a = self.data();
        let b = other.data();
        let mut out = vec![0.0f32; m * n];
        match policy {
            KernelPolicy::Blocked => {
                // B is stored [n, k]; strides express the transpose.
                gemm_strided(m, n, k, a, k, 1, b, 1, k, &mut out, false);
            }
            KernelPolicy::Naive => {
                for i in 0..m {
                    let arow = &a[i * k..(i + 1) * k];
                    for j in 0..n {
                        let brow = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0f32;
                        for (&av, &bv) in arow.iter().zip(brow.iter()) {
                            acc += av * bv;
                        }
                        out[i * n + j] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[m, n])
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank-2.
    pub fn transpose2d(&self) -> Result<Tensor, TensorError> {
        let (m, n) = rank2(self, "transpose2d")?;
        let a = self.data();
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Adds a length-`n` bias row to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` is not `[n]`.
    pub fn add_bias_rows(&self, bias: &Tensor) -> Result<Tensor, TensorError> {
        let (m, n) = rank2(self, "add_bias_rows")?;
        if bias.dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.dims().to_vec(),
                op: "add_bias_rows",
            });
        }
        let mut out = self.clone();
        for i in 0..m {
            let row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (o, &b) in row.iter_mut().zip(bias.data().iter()) {
                *o += b;
            }
        }
        Ok(out)
    }

    /// Sums an `[m, n]` matrix over its rows, producing `[n]`.
    ///
    /// This is the adjoint of [`Tensor::add_bias_rows`] with respect to the
    /// bias.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless the tensor is rank-2.
    pub fn sum_rows(&self) -> Result<Tensor, TensorError> {
        let (m, n) = rank2(self, "sum_rows")?;
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            for (o, &v) in out.iter_mut().zip(row.iter()) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[n])
    }
}

fn rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize), TensorError> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.shape().rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_hand_checked() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(a.matmul(&b).is_err());
        let v = t(&[1.0], &[1]);
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[1.0, -1.0, 0.5, 2.0, 0.0, 3.0], &[2, 3]);
        // aᵀ @ b  ==  transpose(a) @ b
        let via_t = a.transpose2d().unwrap().matmul(&b).unwrap();
        let direct = a.matmul_t_a(&b).unwrap();
        assert!(via_t.allclose(&direct, 1e-6).unwrap());
        // a @ bᵀ  ==  a @ transpose(b)
        let via_t2 = a.matmul(&b.transpose2d().unwrap()).unwrap();
        let direct2 = a.matmul_b_t(&b).unwrap();
        assert!(via_t2.allclose(&direct2, 1e-6).unwrap());
    }

    #[test]
    fn transpose_involution() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = a.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn bias_rows_and_adjoint() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[10.0, 20.0], &[2]);
        let y = x.add_bias_rows(&b).unwrap();
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        let g = x.sum_rows().unwrap();
        assert_eq!(g.data(), &[4.0, 6.0]);
    }

    #[test]
    fn bias_shape_checked() {
        let x = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0], &[1]);
        assert!(x.add_bias_rows(&b).is_err());
    }
}
