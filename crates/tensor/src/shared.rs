//! Shared, copy-on-write tensor handles for the executor data plane.
//!
//! The threaded Pipe-BD executor relays boundary activations between stages
//! and broadcasts averaged gradients within a stage. Those tensors are
//! immutable once produced, so the relay fabric shares one allocation per
//! tensor via [`SharedTensor`] — cloning and sending a handle is a
//! reference-count bump, not a buffer copy.
//!
//! The few sites that legitimately mutate a shared tensor go through
//! [`SharedTensor::make_mut`], which is copy-on-write: it returns a direct
//! `&mut Tensor` when the handle is the sole owner, and clones the buffer
//! first when it is aliased, so a mutation through one handle is never
//! observable through another.

use std::ops::Deref;
use std::sync::Arc;

use crate::tensor::Tensor;

/// An atomically reference-counted tensor with copy-on-write mutation.
///
/// `Clone` is O(1) (a refcount bump). Read access goes through `Deref`, so
/// a `&SharedTensor` coerces to `&Tensor` wherever one is expected.
///
/// # Example
///
/// ```
/// use pipebd_tensor::{SharedTensor, Tensor};
///
/// let a = SharedTensor::new(Tensor::ones(&[2, 2]));
/// let mut b = a.clone();          // refcount bump, same buffer
/// assert!(a.ptr_eq(&b));
/// b.make_mut().scale(3.0);        // copy-on-write: `a` is untouched
/// assert!(!a.ptr_eq(&b));
/// assert_eq!(a.sum(), 4.0);
/// assert_eq!(b.sum(), 12.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SharedTensor(Arc<Tensor>);

impl SharedTensor {
    /// Wraps a tensor in a shared handle (moves the buffer; no copy).
    pub fn new(tensor: Tensor) -> Self {
        SharedTensor(Arc::new(tensor))
    }

    /// Mutable access with copy-on-write semantics.
    ///
    /// If this handle is the unique owner the underlying buffer is
    /// borrowed directly; otherwise the tensor is cloned first and this
    /// handle re-pointed at the private copy. Aliasing handles never
    /// observe the mutation.
    pub fn make_mut(&mut self) -> &mut Tensor {
        Arc::make_mut(&mut self.0)
    }

    /// Unwraps into an owned tensor.
    ///
    /// Free (a move) when this handle is the unique owner; clones the
    /// buffer when it is aliased.
    pub fn into_tensor(self) -> Tensor {
        Arc::try_unwrap(self.0).unwrap_or_else(|arc| (*arc).clone())
    }

    /// Whether two handles share the same allocation.
    pub fn ptr_eq(&self, other: &SharedTensor) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Number of live handles to this allocation.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl Deref for SharedTensor {
    type Target = Tensor;

    fn deref(&self) -> &Tensor {
        &self.0
    }
}

impl AsRef<Tensor> for SharedTensor {
    fn as_ref(&self) -> &Tensor {
        &self.0
    }
}

impl From<Tensor> for SharedTensor {
    fn from(tensor: Tensor) -> Self {
        SharedTensor::new(tensor)
    }
}

impl From<SharedTensor> for Tensor {
    fn from(shared: SharedTensor) -> Self {
        shared.into_tensor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_aliasing_not_copying() {
        let a = SharedTensor::new(Tensor::ones(&[4]));
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        assert_eq!(a.ref_count(), 2);
    }

    #[test]
    fn make_mut_unique_is_in_place() {
        let mut a = SharedTensor::new(Tensor::ones(&[4]));
        let before = a.data().as_ptr();
        a.make_mut().scale(2.0);
        assert_eq!(a.data().as_ptr(), before, "unique owner must not copy");
        assert_eq!(a.sum(), 8.0);
    }

    #[test]
    fn make_mut_aliased_copies_first() {
        let a = SharedTensor::new(Tensor::ones(&[4]));
        let mut b = a.clone();
        b.make_mut().fill(5.0);
        assert!(!a.ptr_eq(&b));
        assert_eq!(a.sum(), 4.0, "alias must not observe the mutation");
        assert_eq!(b.sum(), 20.0);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn into_tensor_unique_is_a_move() {
        let a = SharedTensor::new(Tensor::ones(&[4]));
        let before = a.data().as_ptr();
        let t = a.into_tensor();
        assert_eq!(t.data().as_ptr(), before, "unique unwrap must move");
    }

    #[test]
    fn into_tensor_aliased_clones() {
        let a = SharedTensor::new(Tensor::ones(&[4]));
        let b = a.clone();
        let t = b.into_tensor();
        assert_eq!(t, *a);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn deref_and_conversions() {
        let shared: SharedTensor = Tensor::full(&[2], 3.0).into();
        assert_eq!(shared.dims(), &[2]);
        let owned: Tensor = shared.clone().into();
        assert_eq!(owned, *shared);
    }
}
