//! Pooling kernels and their adjoints.

use crate::error::TensorError;
use crate::tensor::Tensor;

/// Book-keeping produced by [`max_pool2d`]: the flat input offset chosen for
/// each output element, needed to route gradients in
/// [`max_pool2d_backward`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxPoolIndices {
    indices: Vec<usize>,
    input_dims: Vec<usize>,
}

fn rank4(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize), TensorError> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.shape().rank(),
            op,
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

fn pooled_extent(extent: usize, window: usize, stride: usize) -> Result<usize, TensorError> {
    if stride == 0 || window == 0 {
        return Err(TensorError::invalid("pool: window and stride must be > 0"));
    }
    if extent < window {
        return Err(TensorError::invalid(format!(
            "pool: input extent {extent} smaller than window {window}"
        )));
    }
    Ok((extent - window) / stride + 1)
}

/// Average pooling with a square window.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs, zero window/stride, or inputs
/// smaller than the window.
pub fn avg_pool2d(x: &Tensor, window: usize, stride: usize) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = rank4(x, "avg_pool2d")?;
    let oh = pooled_extent(h, window, stride)?;
    let ow = pooled_extent(w, window, stride)?;
    let inv = 1.0 / (window * window) as f32;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..window {
                        for kx in 0..window {
                            acc += xd[base + (oy * stride + ky) * w + ox * stride + kx];
                        }
                    }
                    out[((b * c + ch) * oh + oy) * ow + ox] = acc * inv;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, oh, ow])
}

/// Adjoint of [`avg_pool2d`].
///
/// # Errors
///
/// Returns an error if `dy` is inconsistent with the pooled extents of
/// `input_dims`.
pub fn avg_pool2d_backward(
    dy: &Tensor,
    input_dims: &[usize],
    window: usize,
    stride: usize,
) -> Result<Tensor, TensorError> {
    let (n, c, oh, ow) = rank4(dy, "avg_pool2d_backward")?;
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
            op: "avg_pool2d_backward",
        });
    }
    let (h, w) = (input_dims[2], input_dims[3]);
    if pooled_extent(h, window, stride)? != oh || pooled_extent(w, window, stride)? != ow {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, oh, ow],
            actual: input_dims.to_vec(),
            op: "avg_pool2d_backward",
        });
    }
    let inv = 1.0 / (window * window) as f32;
    let dyd = dy.data();
    let mut dx = vec![0.0f32; n * c * h * w];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = dyd[((b * c + ch) * oh + oy) * ow + ox] * inv;
                    for ky in 0..window {
                        for kx in 0..window {
                            dx[base + (oy * stride + ky) * w + ox * stride + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(dx, input_dims)
}

/// Max pooling with a square window; also returns the winning indices.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`].
pub fn max_pool2d(
    x: &Tensor,
    window: usize,
    stride: usize,
) -> Result<(Tensor, MaxPoolIndices), TensorError> {
    let (n, c, h, w) = rank4(x, "max_pool2d")?;
    let oh = pooled_extent(h, window, stride)?;
    let ow = pooled_extent(w, window, stride)?;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut idx = vec![0usize; n * c * oh * ow];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0usize;
                    for ky in 0..window {
                        for kx in 0..window {
                            let off = base + (oy * stride + ky) * w + ox * stride + kx;
                            if xd[off] > best {
                                best = xd[off];
                                best_off = off;
                            }
                        }
                    }
                    let o = ((b * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    idx[o] = best_off;
                }
            }
        }
    }
    Ok((
        Tensor::from_vec(out, &[n, c, oh, ow])?,
        MaxPoolIndices {
            indices: idx,
            input_dims: vec![n, c, h, w],
        },
    ))
}

/// Adjoint of [`max_pool2d`]: routes each output gradient to the input
/// element that won the max.
///
/// # Errors
///
/// Returns an error if `dy` does not match the recorded output size.
pub fn max_pool2d_backward(dy: &Tensor, indices: &MaxPoolIndices) -> Result<Tensor, TensorError> {
    if dy.numel() != indices.indices.len() {
        return Err(TensorError::LengthMismatch {
            expected: indices.indices.len(),
            actual: dy.numel(),
            op: "max_pool2d_backward",
        });
    }
    let mut dx = Tensor::zeros(&indices.input_dims);
    let dxd = dx.data_mut();
    for (g, &off) in dy.data().iter().zip(indices.indices.iter()) {
        dxd[off] += g;
    }
    Ok(dx)
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
///
/// # Errors
///
/// Returns an error for non-rank-4 inputs.
pub fn global_avg_pool(x: &Tensor) -> Result<Tensor, TensorError> {
    let (n, c, h, w) = rank4(x, "global_avg_pool")?;
    let inv = 1.0 / (h * w) as f32;
    let xd = x.data();
    let mut out = vec![0.0f32; n * c];
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            out[b * c + ch] = xd[base..base + h * w].iter().sum::<f32>() * inv;
        }
    }
    Tensor::from_vec(out, &[n, c])
}

/// Adjoint of [`global_avg_pool`].
///
/// # Errors
///
/// Returns an error if `dy` is not `[n, c]` consistent with `input_dims`.
pub fn global_avg_pool_backward(dy: &Tensor, input_dims: &[usize]) -> Result<Tensor, TensorError> {
    if input_dims.len() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: input_dims.len(),
            op: "global_avg_pool_backward",
        });
    }
    let (n, c, h, w) = (input_dims[0], input_dims[1], input_dims[2], input_dims[3]);
    if dy.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c],
            actual: dy.dims().to_vec(),
            op: "global_avg_pool_backward",
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let dyd = dy.data();
    let mut dx = vec![0.0f32; n * c * h * w];
    for b in 0..n {
        for ch in 0..c {
            let g = dyd[b * c + ch] * inv;
            let base = (b * c + ch) * h * w;
            for v in &mut dx[base..base + h * w] {
                *v = g;
            }
        }
    }
    Tensor::from_vec(dx, input_dims)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    #[test]
    fn avg_pool_hand_checked() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = avg_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_distributes_evenly() {
        let dy = Tensor::ones(&[1, 1, 2, 2]);
        let dx = avg_pool2d_backward(&dy, &[1, 1, 4, 4], 2, 2).unwrap();
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
        assert!((dx.sum() - dy.sum()).abs() < 1e-6);
    }

    #[test]
    fn max_pool_and_routing() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, //
                3.0, 0.0, 1.0, 1.0, //
                0.0, 0.0, 9.0, 0.0, //
                7.0, 0.0, 0.0, 0.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let (y, idx) = max_pool2d(&x, 2, 2).unwrap();
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 9.0]);
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let dx = max_pool2d_backward(&dy, &idx).unwrap();
        assert_eq!(dx.at(&[0, 0, 1, 0]).unwrap(), 1.0); // 3.0 won
        assert_eq!(dx.at(&[0, 0, 0, 2]).unwrap(), 2.0); // 5.0 won
        assert_eq!(dx.at(&[0, 0, 3, 0]).unwrap(), 3.0); // 7.0 won
        assert_eq!(dx.at(&[0, 0, 2, 2]).unwrap(), 4.0); // 9.0 won
        assert!((dx.sum() - dy.sum()).abs() < 1e-6);
    }

    #[test]
    fn global_avg_pool_and_backward() {
        let mut rng = Rng64::seed_from_u64(1);
        let x = Tensor::randn(&[2, 3, 4, 4], &mut rng);
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        // Hand check one entry.
        let mut acc = 0.0;
        for h in 0..4 {
            for w in 0..4 {
                acc += x.at(&[1, 2, h, w]).unwrap();
            }
        }
        assert!((y.at(&[1, 2]).unwrap() - acc / 16.0).abs() < 1e-5);
        let dy = Tensor::ones(&[2, 3]);
        let dx = global_avg_pool_backward(&dy, &[2, 3, 4, 4]).unwrap();
        assert!((dx.sum() - 6.0).abs() < 1e-5);
    }

    #[test]
    fn pool_validations() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(avg_pool2d(&x, 3, 1).is_err()); // window bigger than input
        assert!(avg_pool2d(&x, 2, 0).is_err()); // zero stride
        let v = Tensor::zeros(&[4]);
        assert!(avg_pool2d(&v, 1, 1).is_err()); // wrong rank
        assert!(global_avg_pool(&v).is_err());
    }
}
