//! Kernel-dispatch policy for the tensor crate's hot compute paths.
//!
//! Every heavy kernel (`matmul` and friends, `conv2d` and its adjoints)
//! exists in two implementations:
//!
//! * [`KernelPolicy::Naive`] — the original direct loops: slow, exact,
//!   trivially auditable, and kept as the oracle the fast path is
//!   property-tested against.
//! * [`KernelPolicy::Blocked`] — the cache-tiled compute plane: packed
//!   blocked GEMM (`gemm` module) plus an im2col lowering for the
//!   convolution kernels (`im2col` module).
//!
//! The policy is process-global so every caller — NN layers, the model
//! zoo, both executors — gets the fast path with zero signature changes.
//! It can be overridden three ways, in precedence order:
//!
//! 1. explicitly per call, via the `*_with` kernel variants;
//! 2. programmatically, via [`set_kernel_policy`];
//! 3. from the environment: `PIPEBD_KERNEL_POLICY=naive|blocked`, read
//!    once on first use.
//!
//! The default is [`KernelPolicy::Blocked`].

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Selects the implementation used by the tensor crate's compute kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPolicy {
    /// Direct scalar loops — the reference oracle.
    Naive,
    /// im2col + packed cache-blocked GEMM — the default fast path.
    Blocked,
}

impl KernelPolicy {
    fn as_u8(self) -> u8 {
        match self {
            KernelPolicy::Naive => 0,
            KernelPolicy::Blocked => 1,
        }
    }

    fn from_u8(v: u8) -> Self {
        if v == 0 {
            KernelPolicy::Naive
        } else {
            KernelPolicy::Blocked
        }
    }
}

impl std::fmt::Display for KernelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelPolicy::Naive => write!(f, "naive"),
            KernelPolicy::Blocked => write!(f, "blocked"),
        }
    }
}

/// 0 = naive, 1 = blocked, u8::MAX = unset (fall back to env/default).
static POLICY: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_POLICY: OnceLock<KernelPolicy> = OnceLock::new();

fn env_policy() -> KernelPolicy {
    *ENV_POLICY.get_or_init(|| match std::env::var("PIPEBD_KERNEL_POLICY") {
        Ok(v) if v.trim().eq_ignore_ascii_case("naive") => KernelPolicy::Naive,
        Ok(v) if v.trim().eq_ignore_ascii_case("blocked") => KernelPolicy::Blocked,
        Ok(v) => {
            // A typo'd value silently picking the fast path would
            // mislabel recorded experiments; warn loudly and fall back.
            eprintln!(
                "pipebd_tensor: unrecognized PIPEBD_KERNEL_POLICY={v:?} \
                 (expected \"naive\" or \"blocked\"); using blocked"
            );
            KernelPolicy::Blocked
        }
        Err(_) => KernelPolicy::Blocked,
    })
}

/// The process-global kernel policy currently in effect.
///
/// Resolution order: the last [`set_kernel_policy`] call, else the
/// `PIPEBD_KERNEL_POLICY` environment variable, else
/// [`KernelPolicy::Blocked`].
pub fn kernel_policy() -> KernelPolicy {
    match POLICY.load(Ordering::Relaxed) {
        u8::MAX => env_policy(),
        v => KernelPolicy::from_u8(v),
    }
}

/// Overrides the process-global kernel policy.
///
/// Intended for harnesses that A/B the implementations; concurrent tests
/// should prefer the explicit `*_with` kernel variants, which take the
/// policy as an argument and touch no global state.
pub fn set_kernel_policy(policy: KernelPolicy) {
    POLICY.store(policy.as_u8(), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(KernelPolicy::Naive.to_string(), "naive");
        assert_eq!(KernelPolicy::Blocked.to_string(), "blocked");
    }

    #[test]
    fn roundtrip_u8() {
        for p in [KernelPolicy::Naive, KernelPolicy::Blocked] {
            assert_eq!(KernelPolicy::from_u8(p.as_u8()), p);
        }
    }
}
