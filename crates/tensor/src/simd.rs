//! Runtime SIMD dispatch for the blocked-GEMM microkernel.
//!
//! The compute plane used to be compiled `-C target-cpu=native`, which
//! made the binary fast on exactly one microarchitecture and illegal
//! (SIGILL) everywhere newer instructions were missing. Instead, the
//! GEMM macro-kernel now exists in three [`SimdTier`]s — one compiled
//! body per instruction-set level, selected **once at startup** by
//! probing the CPU:
//!
//! | tier | `#[target_feature]` | microkernel shape |
//! |------|---------------------|-------------------|
//! | [`SimdTier::Avx512`] | `avx512f,avx512vl,avx512dq,avx512bw,avx2,fma` | 8×32 tile in zmm registers |
//! | [`SimdTier::Fma`] | `avx2,fma` | same tile in ymm registers |
//! | [`SimdTier::Scalar`] | none (baseline x86-64 / any arch) | autovectorized to SSE2 or scalar, `fmaf` via libm |
//!
//! Every tier runs the **same Rust source** (`gemm::macro_kernel_body`);
//! only the enabled instruction set differs. Because the kernel's inner
//! update is `f32::mul_add` — a *fused* multiply-add with a single
//! rounding on every tier, hardware FMA or software `fmaf` alike — and
//! each output element's fma chain over `k` is identical regardless of
//! vector width, **all tiers produce bitwise-identical results**. The
//! scalar tier is therefore slow (a libm call per multiply-add on
//! pre-FMA hardware) but everywhere-correct; the tier tests assert the
//! bitwise claim directly.
//!
//! Selection, in precedence order (mirroring `PIPEBD_KERNEL_POLICY`):
//!
//! 1. programmatic: [`set_simd_tier`] (validated — unsupported tiers are
//!    rejected, not deferred to a SIGILL);
//! 2. environment: `PIPEBD_SIMD=scalar|fma|avx512|auto`, read once on
//!    first use. Unlike the kernel-policy variable, a bad value here
//!    **panics** instead of warning-and-falling-back: a run benchmarked
//!    under a typo'd tier would mislabel recorded scaling artifacts, so
//!    the failure must be loud;
//! 3. probe: the best tier the CPU supports.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// An instruction-set level the GEMM macro-kernel is compiled for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SimdTier {
    /// Baseline code generation; runs on every CPU the binary targets.
    Scalar,
    /// AVX2 + FMA (x86-64-v3 class machines).
    Fma,
    /// AVX-512 (F/VL/DQ/BW) + AVX2 + FMA.
    Avx512,
}

impl SimdTier {
    /// All tiers, best first — probe order.
    pub const ALL: [SimdTier; 3] = [SimdTier::Avx512, SimdTier::Fma, SimdTier::Scalar];

    fn as_u8(self) -> u8 {
        match self {
            SimdTier::Scalar => 0,
            SimdTier::Fma => 1,
            SimdTier::Avx512 => 2,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            0 => SimdTier::Scalar,
            1 => SimdTier::Fma,
            _ => SimdTier::Avx512,
        }
    }

    /// Whether the running CPU can execute this tier.
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Scalar => true,
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            SimdTier::Fma => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
            }
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            SimdTier::Avx512 => {
                std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512vl")
                    && std::arch::is_x86_feature_detected!("avx512dq")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && SimdTier::Fma.is_supported()
            }
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            _ => false,
        }
    }

    /// The best tier the running CPU supports — the startup probe.
    pub fn probe() -> SimdTier {
        *SimdTier::ALL
            .iter()
            .find(|t| t.is_supported())
            .expect("scalar tier is always supported")
    }
}

impl std::fmt::Display for SimdTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimdTier::Scalar => write!(f, "scalar"),
            SimdTier::Fma => write!(f, "fma"),
            SimdTier::Avx512 => write!(f, "avx512"),
        }
    }
}

impl std::str::FromStr for SimdTier {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Ok(SimdTier::Scalar),
            "fma" => Ok(SimdTier::Fma),
            "avx512" => Ok(SimdTier::Avx512),
            other => Err(format!(
                "unknown SIMD tier `{other}` (expected \"scalar\", \"fma\", \"avx512\", or \"auto\")"
            )),
        }
    }
}

/// 0/1/2 = a [`SimdTier`], u8::MAX = unset (fall back to env/probe).
static TIER: AtomicU8 = AtomicU8::new(u8::MAX);
static ENV_TIER: OnceLock<SimdTier> = OnceLock::new();

/// Resolves a `PIPEBD_SIMD`-style override against the running CPU.
/// `None` or `"auto"` probes; anything else must name a supported tier.
///
/// # Errors
///
/// Returns a diagnostic if the value is not a tier name, or names a tier
/// this CPU cannot execute — the caller decides how loudly to fail
/// (the env path panics, [`set_simd_tier`] returns the error).
pub fn resolve_simd_override(spec: Option<&str>) -> Result<SimdTier, String> {
    let spec = match spec {
        None => return Ok(SimdTier::probe()),
        Some(s) if s.trim().eq_ignore_ascii_case("auto") => return Ok(SimdTier::probe()),
        Some(s) => s,
    };
    let tier: SimdTier = spec.parse()?;
    if !tier.is_supported() {
        return Err(format!(
            "SIMD tier `{tier}` is not supported by this CPU (best supported: `{}`)",
            SimdTier::probe()
        ));
    }
    Ok(tier)
}

fn env_tier() -> SimdTier {
    *ENV_TIER.get_or_init(|| {
        let var = std::env::var("PIPEBD_SIMD").ok();
        match resolve_simd_override(var.as_deref()) {
            Ok(t) => t,
            // Fail loudly: a typo'd or unsupported tier silently falling
            // back would mislabel every recorded kernel/scaling artifact
            // in this process. (Deliberately *not* the warn-and-default
            // behavior of PIPEBD_KERNEL_POLICY.)
            Err(e) => panic!("pipebd_tensor: invalid PIPEBD_SIMD: {e}"),
        }
    })
}

/// The process-global SIMD tier currently in effect.
///
/// Resolution order: the last successful [`set_simd_tier`] call, else the
/// `PIPEBD_SIMD` environment variable (panicking on an unknown or
/// unsupported value), else the CPU probe.
pub fn simd_tier() -> SimdTier {
    match TIER.load(Ordering::Relaxed) {
        u8::MAX => env_tier(),
        v => SimdTier::from_u8(v),
    }
}

/// Overrides the process-global SIMD tier.
///
/// # Errors
///
/// Rejects a tier the running CPU cannot execute (the global is left
/// unchanged) — dispatch never holds a tier that would SIGILL.
pub fn set_simd_tier(tier: SimdTier) -> Result<(), String> {
    if !tier.is_supported() {
        return Err(format!(
            "SIMD tier `{tier}` is not supported by this CPU (best supported: `{}`)",
            SimdTier::probe()
        ));
    }
    TIER.store(tier.as_u8(), Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        for t in SimdTier::ALL {
            assert_eq!(t.to_string().parse::<SimdTier>(), Ok(t));
        }
    }

    #[test]
    fn unknown_override_is_an_error_not_a_fallback() {
        let err = resolve_simd_override(Some("avx1024")).unwrap_err();
        assert!(err.contains("unknown SIMD tier"), "{err}");
        let err = resolve_simd_override(Some("")).unwrap_err();
        assert!(err.contains("unknown SIMD tier"), "{err}");
    }

    #[test]
    fn auto_and_unset_probe_a_supported_tier() {
        let probed = resolve_simd_override(None).unwrap();
        assert!(probed.is_supported());
        assert_eq!(resolve_simd_override(Some("auto")).unwrap(), probed);
        assert_eq!(resolve_simd_override(Some("AUTO")).unwrap(), probed);
        assert_eq!(SimdTier::probe(), probed);
    }

    #[test]
    fn scalar_is_always_supported_and_resolvable() {
        assert!(SimdTier::Scalar.is_supported());
        assert_eq!(
            resolve_simd_override(Some("scalar")).unwrap(),
            SimdTier::Scalar
        );
    }

    #[test]
    fn unsupported_tier_is_rejected_by_setter() {
        // Find a tier the CPU lacks, if any; the setter must refuse it.
        for t in SimdTier::ALL {
            if !t.is_supported() {
                assert!(set_simd_tier(t).is_err(), "{t} must be rejected");
            }
        }
        // The resolver agrees with the setter on unsupported tiers.
        for t in SimdTier::ALL {
            let resolved = resolve_simd_override(Some(&t.to_string()));
            assert_eq!(resolved.is_ok(), t.is_supported());
        }
    }

    #[test]
    fn roundtrip_u8() {
        for t in SimdTier::ALL {
            assert_eq!(SimdTier::from_u8(t.as_u8()), t);
        }
    }
}
