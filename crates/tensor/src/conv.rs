//! Grouped 2-D convolution kernels and their adjoints.
//!
//! A single grouped convolution covers all the convolution flavours the
//! model zoo needs: `groups == 1` is an ordinary convolution, and
//! `groups == in_channels` is a depthwise convolution (the first half of the
//! DS-Conv replacement blocks from the paper's model-compression workload).
//!
//! Each kernel exists in two implementations, selected by the process
//! [`KernelPolicy`] (or explicitly via the `*_with` variants):
//!
//! * **naive** — direct 7-deep loops: slow, exact, deterministic, easy to
//!   verify against finite differences, and kept as the oracle;
//! * **blocked** — the im2col + packed-GEMM lowering in the `im2col`
//!   module (the default), typically an order of magnitude faster.

use crate::error::TensorError;
use crate::im2col::{
    conv2d_blocked, conv2d_grad_input_blocked, conv2d_grad_weight_blocked, ConvGeom,
};
use crate::kernel::{kernel_policy, KernelPolicy};
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
///
/// Weights use layout `[out_channels, in_channels / groups, kernel, kernel]`;
/// activations use `[batch, channels, height, width]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Number of input channels.
    pub in_channels: usize,
    /// Number of output channels.
    pub out_channels: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Stride along both spatial axes.
    pub stride: usize,
    /// Zero padding along both spatial axes.
    pub padding: usize,
    /// Channel groups (1 = dense, `in_channels` = depthwise).
    pub groups: usize,
}

impl Conv2dSpec {
    /// A dense (ungrouped) convolution spec.
    pub fn dense(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
            groups: 1,
        }
    }

    /// A depthwise convolution spec (`groups == channels`).
    pub fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        Conv2dSpec {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding,
            groups: channels,
        }
    }

    /// Expected weight tensor dims: `[co, ci/groups, k, k]`.
    pub fn weight_dims(&self) -> [usize; 4] {
        [
            self.out_channels,
            self.in_channels / self.groups,
            self.kernel,
            self.kernel,
        ]
    }

    /// Output spatial extent for an input extent.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the padded input is
    /// smaller than the kernel.
    pub fn out_extent(&self, extent: usize) -> Result<usize, TensorError> {
        let padded = extent + 2 * self.padding;
        if padded < self.kernel {
            return Err(TensorError::invalid(format!(
                "conv2d: padded input {padded} smaller than kernel {}",
                self.kernel
            )));
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }

    /// Multiply-accumulate count for one sample at the given input extent.
    ///
    /// Used to keep the simulator's FLOP model and the executable models in
    /// agreement.
    pub fn flops_per_sample(&self, height: usize, width: usize) -> u64 {
        let oh = (height + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        let ow = (width + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        // 2 ops (mul + add) per MAC.
        2 * (self.out_channels as u64)
            * (oh as u64)
            * (ow as u64)
            * ((self.in_channels / self.groups) as u64)
            * (self.kernel as u64)
            * (self.kernel as u64)
    }

    fn validate(
        &self,
        x: &Tensor,
        w: &Tensor,
    ) -> Result<(usize, usize, usize, usize), TensorError> {
        if self.stride == 0 {
            return Err(TensorError::invalid("conv2d: stride must be > 0"));
        }
        if self.groups == 0
            || self.in_channels % self.groups != 0
            || self.out_channels % self.groups != 0
        {
            return Err(TensorError::invalid(format!(
                "conv2d: groups {} must divide in {} and out {}",
                self.groups, self.in_channels, self.out_channels
            )));
        }
        if x.shape().rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: x.shape().rank(),
                op: "conv2d",
            });
        }
        let [n, ci, h, wd] = [x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]];
        if ci != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n, self.in_channels, h, wd],
                actual: x.dims().to_vec(),
                op: "conv2d",
            });
        }
        if w.dims() != self.weight_dims() {
            return Err(TensorError::ShapeMismatch {
                expected: self.weight_dims().to_vec(),
                actual: w.dims().to_vec(),
                op: "conv2d",
            });
        }
        Ok((n, ci, h, wd))
    }
}

/// Forward grouped 2-D convolution.
///
/// # Errors
///
/// Returns an error if the spec is inconsistent with the operand shapes or
/// the padded input is smaller than the kernel.
///
/// # Example
///
/// ```
/// use pipebd_tensor::{conv2d, Conv2dSpec, Tensor};
///
/// # fn main() -> Result<(), pipebd_tensor::TensorError> {
/// // 3x3 identity-ish kernel on a 1-channel 4x4 image.
/// let spec = Conv2dSpec::dense(1, 1, 3, 1, 1);
/// let x = Tensor::ones(&[1, 1, 4, 4]);
/// let mut w = Tensor::zeros(&[1, 1, 3, 3]);
/// w.set(&[0, 0, 1, 1], 1.0)?; // center tap
/// let y = conv2d(&x, &w, spec)?;
/// assert_eq!(y.dims(), &[1, 1, 4, 4]);
/// assert_eq!(y.sum(), 16.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Result<Tensor, TensorError> {
    conv2d_with(x, w, spec, kernel_policy())
}

/// [`conv2d`] with an explicit [`KernelPolicy`] (ignores the global one).
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    x: &Tensor,
    w: &Tensor,
    spec: Conv2dSpec,
    policy: KernelPolicy,
) -> Result<Tensor, TensorError> {
    let (n, _ci, h, wd) = spec.validate(x, w)?;
    let oh = spec.out_extent(h)?;
    let ow = spec.out_extent(wd)?;
    let mut out = vec![0.0f32; n * spec.out_channels * oh * ow];
    match policy {
        KernelPolicy::Blocked => {
            let geom = ConvGeom {
                n,
                h,
                w: wd,
                oh,
                ow,
            };
            conv2d_blocked(x.data(), w.data(), &mut out, &spec, &geom);
        }
        KernelPolicy::Naive => {
            conv2d_naive(x.data(), w.data(), &mut out, spec, n, h, wd, oh, ow);
        }
    }
    Tensor::from_vec(out, &[n, spec.out_channels, oh, ow])
}

#[allow(clippy::too_many_arguments)]
fn conv2d_naive(
    xd: &[f32],
    wdta: &[f32],
    out: &mut [f32],
    spec: Conv2dSpec,
    n: usize,
    h: usize,
    wd: usize,
    oh: usize,
    ow: usize,
) {
    let cig = spec.in_channels / spec.groups;
    let cog = spec.out_channels / spec.groups;
    let k = spec.kernel;

    for b in 0..n {
        for g in 0..spec.groups {
            for ocg in 0..cog {
                let oc = g * cog + ocg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0f32;
                        for icg in 0..cig {
                            let ic = g * cig + icg;
                            let xbase = ((b * spec.in_channels + ic) * h) * wd;
                            let wbase = ((oc * cig + icg) * k) * k;
                            for ky in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    acc += xd[xbase + iy as usize * wd + ix as usize]
                                        * wdta[wbase + ky * k + kx];
                                }
                            }
                        }
                        out[((b * spec.out_channels + oc) * oh + oy) * ow + ox] = acc;
                    }
                }
            }
        }
    }
}

/// Gradient of the convolution output with respect to its input.
///
/// `dy` has the forward output's shape; the result has the forward input's
/// shape.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with `spec` and `input_hw`.
pub fn conv2d_grad_input(
    dy: &Tensor,
    w: &Tensor,
    spec: Conv2dSpec,
    input_hw: (usize, usize),
) -> Result<Tensor, TensorError> {
    conv2d_grad_input_with(dy, w, spec, input_hw, kernel_policy())
}

/// [`conv2d_grad_input`] with an explicit [`KernelPolicy`].
///
/// # Errors
///
/// Same conditions as [`conv2d_grad_input`].
pub fn conv2d_grad_input_with(
    dy: &Tensor,
    w: &Tensor,
    spec: Conv2dSpec,
    input_hw: (usize, usize),
    policy: KernelPolicy,
) -> Result<Tensor, TensorError> {
    let (h, wd) = input_hw;
    if w.dims() != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            expected: spec.weight_dims().to_vec(),
            actual: w.dims().to_vec(),
            op: "conv2d_grad_input",
        });
    }
    if dy.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: dy.shape().rank(),
            op: "conv2d_grad_input",
        });
    }
    let n = dy.dims()[0];
    let oh = spec.out_extent(h)?;
    let ow = spec.out_extent(wd)?;
    if dy.dims() != [n, spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.out_channels, oh, ow],
            actual: dy.dims().to_vec(),
            op: "conv2d_grad_input",
        });
    }
    let mut dx = vec![0.0f32; n * spec.in_channels * h * wd];
    match policy {
        KernelPolicy::Blocked => {
            let geom = ConvGeom {
                n,
                h,
                w: wd,
                oh,
                ow,
            };
            conv2d_grad_input_blocked(dy.data(), w.data(), &mut dx, &spec, &geom);
        }
        KernelPolicy::Naive => {
            conv2d_grad_input_naive(dy.data(), w.data(), &mut dx, spec, n, h, wd, oh, ow);
        }
    }
    Tensor::from_vec(dx, &[n, spec.in_channels, h, wd])
}

#[allow(clippy::too_many_arguments)]
fn conv2d_grad_input_naive(
    dyd: &[f32],
    wdta: &[f32],
    dx: &mut [f32],
    spec: Conv2dSpec,
    n: usize,
    h: usize,
    wd: usize,
    oh: usize,
    ow: usize,
) {
    let cig = spec.in_channels / spec.groups;
    let cog = spec.out_channels / spec.groups;
    let k = spec.kernel;

    for b in 0..n {
        for g in 0..spec.groups {
            for ocg in 0..cog {
                let oc = g * cog + ocg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = dyd[((b * spec.out_channels + oc) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        for icg in 0..cig {
                            let ic = g * cig + icg;
                            let xbase = ((b * spec.in_channels + ic) * h) * wd;
                            let wbase = ((oc * cig + icg) * k) * k;
                            for ky in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    dx[xbase + iy as usize * wd + ix as usize] +=
                                        go * wdta[wbase + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Gradient of the convolution output with respect to the weights.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent with `spec`.
pub fn conv2d_grad_weight(
    x: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
) -> Result<Tensor, TensorError> {
    conv2d_grad_weight_with(x, dy, spec, kernel_policy())
}

/// [`conv2d_grad_weight`] with an explicit [`KernelPolicy`].
///
/// # Errors
///
/// Same conditions as [`conv2d_grad_weight`].
pub fn conv2d_grad_weight_with(
    x: &Tensor,
    dy: &Tensor,
    spec: Conv2dSpec,
    policy: KernelPolicy,
) -> Result<Tensor, TensorError> {
    // Reuse forward validation for x; dy validated against derived extents.
    let dummy_w = Tensor::zeros(&spec.weight_dims());
    let (n, _ci, h, wd) = spec.validate(x, &dummy_w)?;
    let oh = spec.out_extent(h)?;
    let ow = spec.out_extent(wd)?;
    if dy.dims() != [n, spec.out_channels, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.out_channels, oh, ow],
            actual: dy.dims().to_vec(),
            op: "conv2d_grad_weight",
        });
    }
    let cig = spec.in_channels / spec.groups;
    let mut dw = vec![0.0f32; spec.out_channels * cig * spec.kernel * spec.kernel];
    match policy {
        KernelPolicy::Blocked => {
            let geom = ConvGeom {
                n,
                h,
                w: wd,
                oh,
                ow,
            };
            conv2d_grad_weight_blocked(x.data(), dy.data(), &mut dw, &spec, &geom);
        }
        KernelPolicy::Naive => {
            conv2d_grad_weight_naive(x.data(), dy.data(), &mut dw, spec, n, h, wd, oh, ow);
        }
    }
    Tensor::from_vec(dw, &spec.weight_dims())
}

#[allow(clippy::too_many_arguments)]
fn conv2d_grad_weight_naive(
    xd: &[f32],
    dyd: &[f32],
    dw: &mut [f32],
    spec: Conv2dSpec,
    n: usize,
    h: usize,
    wd: usize,
    oh: usize,
    ow: usize,
) {
    let cig = spec.in_channels / spec.groups;
    let cog = spec.out_channels / spec.groups;
    let k = spec.kernel;

    for b in 0..n {
        for g in 0..spec.groups {
            for ocg in 0..cog {
                let oc = g * cog + ocg;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let go = dyd[((b * spec.out_channels + oc) * oh + oy) * ow + ox];
                        if go == 0.0 {
                            continue;
                        }
                        for icg in 0..cig {
                            let ic = g * cig + icg;
                            let xbase = ((b * spec.in_channels + ic) * h) * wd;
                            let wbase = ((oc * cig + icg) * k) * k;
                            for ky in 0..k {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                if iy < 0 || iy >= h as isize {
                                    continue;
                                }
                                for kx in 0..k {
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if ix < 0 || ix >= wd as isize {
                                        continue;
                                    }
                                    dw[wbase + ky * k + kx] +=
                                        go * xd[xbase + iy as usize * wd + ix as usize];
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng64;

    /// Numerically differentiates `f` at `x[i]` via central differences.
    fn numeric_grad(f: &dyn Fn(&Tensor) -> f32, x: &Tensor, i: usize, eps: f32) -> f32 {
        let mut xp = x.clone();
        xp.data_mut()[i] += eps;
        let mut xm = x.clone();
        xm.data_mut()[i] -= eps;
        (f(&xp) - f(&xm)) / (2.0 * eps)
    }

    #[test]
    fn identity_kernel_preserves_input() {
        let spec = Conv2dSpec::dense(1, 1, 3, 1, 1);
        let mut rng = Rng64::seed_from_u64(1);
        let x = Tensor::randn(&[1, 1, 5, 5], &mut rng);
        let mut w = Tensor::zeros(&[1, 1, 3, 3]);
        w.set(&[0, 0, 1, 1], 1.0).unwrap();
        let y = conv2d(&x, &w, spec).unwrap();
        assert!(y.allclose(&x, 1e-6).unwrap());
    }

    #[test]
    fn stride_two_halves_resolution() {
        let spec = Conv2dSpec::dense(1, 2, 3, 2, 1);
        let x = Tensor::ones(&[2, 1, 8, 8]);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let y = conv2d(&x, &w, spec).unwrap();
        assert_eq!(y.dims(), &[2, 2, 4, 4]);
    }

    #[test]
    fn depthwise_channels_independent() {
        let spec = Conv2dSpec::depthwise(2, 3, 1, 1);
        let mut x = Tensor::zeros(&[1, 2, 4, 4]);
        // Put energy only in channel 0.
        for h in 0..4 {
            for w_ in 0..4 {
                x.set(&[0, 0, h, w_], 1.0).unwrap();
            }
        }
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let y = conv2d(&x, &w, spec).unwrap();
        // Channel 1 of output must be zero (depthwise has no cross-talk).
        for h in 0..4 {
            for w_ in 0..4 {
                assert_eq!(y.at(&[0, 1, h, w_]).unwrap(), 0.0);
            }
        }
        assert!(y.at(&[0, 0, 1, 1]).unwrap() > 0.0);
    }

    #[test]
    fn grouped_conv_matches_blockdiag_dense() {
        // A 2-group conv equals a dense conv with a block-diagonal kernel.
        let mut rng = Rng64::seed_from_u64(2);
        let x = Tensor::randn(&[2, 4, 5, 5], &mut rng);
        let gspec = Conv2dSpec {
            in_channels: 4,
            out_channels: 4,
            kernel: 3,
            stride: 1,
            padding: 1,
            groups: 2,
        };
        let gw = Tensor::randn(&[4, 2, 3, 3], &mut rng);
        let gy = conv2d(&x, &gw, gspec).unwrap();

        let dspec = Conv2dSpec::dense(4, 4, 3, 1, 1);
        let mut dw = Tensor::zeros(&[4, 4, 3, 3]);
        for oc in 0..4 {
            let g = oc / 2;
            for icg in 0..2 {
                let ic = g * 2 + icg;
                for ky in 0..3 {
                    for kx in 0..3 {
                        dw.set(&[oc, ic, ky, kx], gw.at(&[oc, icg, ky, kx]).unwrap())
                            .unwrap();
                    }
                }
            }
        }
        let dy = conv2d(&x, &dw, dspec).unwrap();
        assert!(gy.allclose(&dy, 1e-5).unwrap());
    }

    #[test]
    fn grad_input_matches_finite_differences() {
        let spec = Conv2dSpec::dense(2, 3, 3, 2, 1);
        let mut rng = Rng64::seed_from_u64(3);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        // Scalar objective: weighted sum of outputs (weights = fixed random).
        let y0 = conv2d(&x, &w, spec).unwrap();
        let probe = Tensor::randn(y0.dims(), &mut rng);
        let f = |xt: &Tensor| conv2d(xt, &w, spec).unwrap().mul(&probe).unwrap().sum();
        let dx = conv2d_grad_input(&probe, &w, spec, (6, 6)).unwrap();
        for &i in &[0usize, 7, 20, 35, 71] {
            let num = numeric_grad(&f, &x, i, 1e-2);
            let ana = dx.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dx[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn grad_weight_matches_finite_differences() {
        let spec = Conv2dSpec::depthwise(2, 3, 1, 1);
        let mut rng = Rng64::seed_from_u64(4);
        let x = Tensor::randn(&[2, 2, 5, 5], &mut rng);
        let w = Tensor::randn(&[2, 1, 3, 3], &mut rng);
        let y0 = conv2d(&x, &w, spec).unwrap();
        let probe = Tensor::randn(y0.dims(), &mut rng);
        let f = |wt: &Tensor| conv2d(&x, wt, spec).unwrap().mul(&probe).unwrap().sum();
        let dw = conv2d_grad_weight(&x, &probe, spec).unwrap();
        for i in 0..dw.numel() {
            let num = numeric_grad(&f, &w, i, 1e-2);
            let ana = dw.data()[i];
            assert!(
                (num - ana).abs() < 2e-2 * (1.0 + ana.abs()),
                "dw[{i}]: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn validation_errors() {
        let spec = Conv2dSpec::dense(2, 2, 3, 1, 1);
        let x = Tensor::zeros(&[1, 3, 4, 4]); // wrong channels
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        assert!(conv2d(&x, &w, spec).is_err());
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let wbad = Tensor::zeros(&[2, 2, 5, 5]); // wrong kernel
        assert!(conv2d(&x, &wbad, spec).is_err());
        let bad = Conv2dSpec { stride: 0, ..spec };
        assert!(conv2d(&x, &w, bad).is_err());
    }

    #[test]
    fn flops_counting_sane() {
        let spec = Conv2dSpec::dense(3, 8, 3, 1, 1);
        // 2 * co * oh * ow * ci * k * k = 2*8*4*4*3*9 = 6912
        assert_eq!(spec.flops_per_sample(4, 4), 6912);
        let dw = Conv2dSpec::depthwise(8, 3, 1, 1);
        // 2 * 8 * 16 * 1 * 9
        assert_eq!(dw.flops_per_sample(4, 4), 2 * 8 * 16 * 9);
    }
}
