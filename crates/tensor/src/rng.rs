/// Deterministic pseudo-random number generator (xoshiro256++).
///
/// Every stochastic component in the reproduction (weight initialization,
/// synthetic datasets, workload jitter) draws from an explicitly seeded
/// `Rng64`, so a whole experiment is a pure function of its seeds. The
/// generator is splittable via [`Rng64::fork`], which derives an independent
/// stream — used to give each device/worker its own stream without
/// coordination.
///
/// # Example
///
/// ```
/// use pipebd_tensor::Rng64;
///
/// let mut a = Rng64::seed_from_u64(42);
/// let mut b = Rng64::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.uniform();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the Box–Muller transform.
    spare_normal: Option<f32>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (expanded with SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Rng64 {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Derives an independent stream keyed by `stream`.
    ///
    /// Forking with distinct stream ids from the same parent produces
    /// statistically independent generators; forking twice with the same id
    /// produces identical generators (useful for replays).
    pub fn fork(&self, stream: u64) -> Self {
        // Mix the parent state with the stream id through SplitMix64 so the
        // child is decorrelated from both the parent and sibling streams.
        let mut sm = self.state[0]
            ^ self.state[1].rotate_left(17)
            ^ self.state[2].rotate_left(31)
            ^ self.state[3].rotate_left(47)
            ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng64 {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.state[0]
            .wrapping_add(self.state[3])
            .rotate_left(23)
            .wrapping_add(self.state[0]);
        let t = self.state[1] << 17;
        self.state[2] ^= self.state[0];
        self.state[3] ^= self.state[1];
        self.state[1] ^= self.state[2];
        self.state[0] ^= self.state[3];
        self.state[2] ^= t;
        self.state[3] = self.state[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // 24 high bits -> f32 mantissa precision.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below called with n = 0");
        // Multiply-shift; bias is negligible for the small n used here.
        ((self.next_u64() >> 11) % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u1 = self.uniform();
            let u2 = self.uniform();
            if u1 <= f32::EPSILON {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fills `buf` with standard normal samples.
    pub fn fill_normal(&mut self, buf: &mut [f32]) {
        for v in buf {
            *v = self.normal();
        }
    }

    /// Fills `buf` with uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, buf: &mut [f32], lo: f32, hi: f32) {
        for v in buf {
            *v = self.uniform_in(lo, hi);
        }
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i + 1);
            slice.swap(i, j);
        }
    }
}

impl Default for Rng64 {
    fn default() -> Self {
        Rng64::seed_from_u64(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::seed_from_u64(123);
        let mut b = Rng64::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let parent = Rng64::seed_from_u64(9);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(0);
        let mut c3 = parent.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = Rng64::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = Rng64::seed_from_u64(6);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments_roughly_standard() {
        let mut r = Rng64::seed_from_u64(7);
        let n = 50_000;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for _ in 0..n {
            let x = r.normal() as f64;
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::seed_from_u64(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
