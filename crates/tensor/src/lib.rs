//! Minimal CPU tensor library for the Pipe-BD reproduction.
//!
//! This crate provides the numerical substrate used by the *functional* side
//! of the reproduction: real (scaled-down) blockwise-distillation training
//! that demonstrates the paper's Section VII-D claim that Pipe-BD scheduling
//! does not change training results.
//!
//! The design goals are determinism, correctness, and testability first,
//! throughput second. Every kernel has a hand-written adjoint ("backward")
//! kernel next to it, validated against finite differences in the test
//! suite — and the hot kernels (`matmul` family, `conv2d` family) come in
//! two [`KernelPolicy`]-selected implementations: direct naive loops (the
//! oracle) and a cache-blocked packed GEMM with an im2col convolution
//! lowering (the default), property-tested to agree with the oracle.
//!
//! # Example
//!
//! ```
//! use pipebd_tensor::{Tensor, Rng64};
//!
//! # fn main() -> Result<(), pipebd_tensor::TensorError> {
//! let mut rng = Rng64::seed_from_u64(7);
//! let a = Tensor::randn(&[2, 3], &mut rng);
//! let b = Tensor::randn(&[3, 4], &mut rng);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[2, 4]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod conv;
mod error;
mod gemm;
mod im2col;
mod kernel;
mod linalg;
pub mod parallel;
mod pool;
mod rng;
mod shape;
mod shared;
mod simd;
mod tensor;

pub use conv::{
    conv2d, conv2d_grad_input, conv2d_grad_input_with, conv2d_grad_weight, conv2d_grad_weight_with,
    conv2d_with, Conv2dSpec,
};
pub use error::TensorError;
pub use kernel::{kernel_policy, set_kernel_policy, KernelPolicy};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, MaxPoolIndices,
};
pub use rng::Rng64;
pub use shape::Shape;
pub use shared::SharedTensor;
pub use simd::{resolve_simd_override, set_simd_tier, simd_tier, SimdTier};
pub use tensor::Tensor;

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
