//! Packed, cache-blocked f32 GEMM — the [`KernelPolicy::Blocked`] matrix
//! engine.
//!
//! One routine, [`gemm_strided`], backs every dense product in the crate:
//! `matmul`, `matmul_t_a`, `matmul_b_t`, and (through the `im2col`
//! lowering) `conv2d` and both of its adjoints. Transposed operands are
//! handled by the packing step reading through arbitrary row/column
//! strides, so no caller ever materializes a transpose.
//!
//! The structure is the standard three-level blocking of BLIS/GotoBLAS,
//! in plain safe Rust:
//!
//! ```text
//! for jc in 0..n step NC          # B column panel   (stays in L3/L2)
//!   for pc in 0..k step KC        # depth panel
//!     pack B[pc.., jc..] -> ~KC x NC, NR-wide column micro-panels
//!     for ic in 0..m step MC      # A row panel      (stays in L2)
//!       pack A[ic.., pc..] -> ~MC x KC, MR-tall row micro-panels
//!       for each MR x NR tile: microkernel over KC in registers
//! ```
//!
//! The microkernel keeps an `MR x NR` accumulator as a fixed-size array,
//! which LLVM autovectorizes and keeps in vector registers — no
//! intrinsics; the instruction set it may use is chosen at runtime by
//! the [`SimdTier`] dispatch (`simd` module), not at compile time.
//! Per-element accumulation order over `k` is identical to the naive
//! loops (panels ascend, lanes are independent), so the two policies
//! agree to rounding contraction, not just to "some tolerance".
//!
//! When a compute pool is active (`parallel` module), [`gemm_strided`]
//! splits C into per-task row bands (or, for short-wide outputs, column
//! bands through contiguous scratch) and each task runs the unchanged
//! serial kernel [`gemm_serial`] over its band — every C element's fma
//! chain is produced whole by one worker, so parallel results are
//! bitwise identical to serial ones.
//!
//! Packing buffers live in thread-local scratch ([`with_pack_buffers`]),
//! so steady-state training performs no per-call allocation.
//!
//! [`KernelPolicy::Blocked`]: crate::KernelPolicy::Blocked

use std::cell::RefCell;

use crate::simd::{simd_tier, SimdTier};

/// Rows of C carried per microkernel tile.
const MR: usize = 8;
/// Columns of C carried per microkernel tile.
const NR: usize = 32;
/// Row-panel height: A block of `MC x KC` is packed per inner pass.
const MC: usize = 64;
/// Depth of one packed panel pair.
const KC: usize = 256;
/// Column-panel width: B block of `KC x NC` is packed per outer pass.
const NC: usize = 1024;

thread_local! {
    /// `(packed A, packed B)` scratch, reused across calls on this thread.
    static PACK_BUFFERS: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Floats per cache line; pack slices are aligned to this so panel loads
/// never straddle a line.
const LINE: usize = 16;

/// Returns the subslice of `buf` starting at its first cache-line-aligned
/// element, growing the buffer so `len` elements fit past that point.
fn aligned(buf: &mut Vec<f32>, len: usize) -> &mut [f32] {
    if buf.len() < len + LINE {
        buf.resize(len + LINE, 0.0);
    }
    let off = (buf.as_ptr() as usize / 4).wrapping_neg() % LINE;
    &mut buf[off..off + len]
}

/// Runs `f` with this thread's packing scratch grown to the given sizes.
fn with_pack_buffers<R>(
    a_len: usize,
    b_len: usize,
    f: impl FnOnce(&mut [f32], &mut [f32]) -> R,
) -> R {
    PACK_BUFFERS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        let (pa, pb) = &mut *bufs;
        f(aligned(pa, a_len), aligned(pb, b_len))
    })
}

/// `C (+)= A @ B` for strided operands and a contiguous row-major `C`.
///
/// `a` holds an `m x k` matrix with element `(i, p)` at `a[i*rsa + p*csa]`;
/// `b` holds a `k x n` matrix with element `(p, j)` at `b[p*rsb + j*csb]`.
/// `c` is dense row-major `[m, n]`. With `accumulate == false` `C` is
/// overwritten, otherwise the product is added to it — callers chain
/// per-batch contributions (e.g. `conv2d_grad_weight`) without a separate
/// accumulator pass.
///
/// Strides express transposes for free:
///
/// * `A` stored row-major `[m, k]`: `rsa = k, csa = 1`
/// * `A` stored as its transpose `[k, m]`: `rsa = 1, csa = m`
/// * likewise for `B`.
///
/// # Panics
///
/// Debug-asserts that the operand slices cover the strided extents and
/// that `c.len() == m * n`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_strided(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rsa: usize,
    csa: usize,
    b: &[f32],
    rsb: usize,
    csb: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(c.len(), m * n, "gemm: C extent");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    if let Some(pool) = crate::parallel::active_pool() {
        let width = pool.size();
        // Prefer row bands: MR-aligned chunks of row-major C are
        // contiguous, so tasks borrow disjoint `chunks_mut` directly.
        let band = m.div_ceil(width).next_multiple_of(MR);
        if band < m {
            gemm_rows_parallel(
                &pool, band, m, n, k, a, rsa, csa, b, rsb, csb, c, accumulate,
            );
            return;
        }
        // Too few rows to split (e.g. a conv with a handful of output
        // channels): split C's columns instead, through per-band scratch.
        let nband = n.div_ceil(width).next_multiple_of(NR);
        if nband < n {
            gemm_cols_parallel(
                &pool, nband, m, n, k, a, rsa, csa, b, rsb, csb, c, accumulate,
            );
            return;
        }
        // Smaller than one band either way: not worth a scope.
    }
    gemm_serial(m, n, k, a, rsa, csa, b, rsb, csb, c, accumulate);
}

/// Parallel GEMM over horizontal bands of C: task `i` computes rows
/// `[i*band, …)` by running the full serial kernel on its row slice.
/// Per-element arithmetic is untouched — each C element still receives
/// the same ascending-`k` fma chain the serial kernel produces, so the
/// result is bitwise identical for every band split (see the `parallel`
/// module's determinism contract).
#[allow(clippy::too_many_arguments)]
fn gemm_rows_parallel(
    pool: &crate::parallel::ComputePool,
    band: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rsa: usize,
    csa: usize,
    b: &[f32],
    rsb: usize,
    csb: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert!(band % MR == 0 && band < m);
    pool.run_scope(|s| {
        for (bi, cband) in c.chunks_mut(band * n).enumerate() {
            let rows = cband.len() / n;
            let a_band = &a[bi * band * rsa..];
            s.spawn(move || {
                gemm_serial(rows, n, k, a_band, rsa, csa, b, rsb, csb, cband, accumulate);
            });
        }
    });
}

thread_local! {
    /// Column-band scratch for [`gemm_cols_parallel`], reused across
    /// calls on the scoping (caller) thread. Distinct from
    /// `PACK_BUFFERS`, which the per-band `gemm_serial` runs use on
    /// their own worker threads.
    static BAND_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Parallel GEMM over vertical bands of C for short-and-wide outputs.
/// Column bands of row-major C interleave in memory, so each task
/// computes its band into a contiguous scratch block; the caller copies
/// bands in before the scope (when accumulating, so the serial
/// `c_prev + panel₀ + panel₁ + …` chain per element is preserved
/// exactly) and back out after. The copies are whole-row-segment
/// `memcpy`s and change no values — bitwise parity holds.
#[allow(clippy::too_many_arguments)]
fn gemm_cols_parallel(
    pool: &crate::parallel::ComputePool,
    nband: usize,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rsa: usize,
    csa: usize,
    b: &[f32],
    rsb: usize,
    csb: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert!(nband % NR == 0 && nband < n);
    let nbands = n.div_ceil(nband);
    BAND_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < m * nband * nbands {
            buf.resize(m * nband * nbands, 0.0);
        }
        let scratch = &mut buf[..m * nband * nbands];
        let extent = |bi: usize| (bi * nband, nband.min(n - bi * nband));
        if accumulate {
            for (bi, sb) in scratch.chunks_mut(m * nband).enumerate() {
                let (j0, nb) = extent(bi);
                for r in 0..m {
                    sb[r * nb..][..nb].copy_from_slice(&c[r * n + j0..][..nb]);
                }
            }
        }
        pool.run_scope(|s| {
            for (bi, sb) in scratch.chunks_mut(m * nband).enumerate() {
                let (j0, nb) = extent(bi);
                let b_band = &b[j0 * csb..];
                let sb = &mut sb[..m * nb];
                s.spawn(move || {
                    gemm_serial(m, nb, k, a, rsa, csa, b_band, rsb, csb, sb, accumulate);
                });
            }
        });
        for (bi, sb) in scratch.chunks(m * nband).enumerate() {
            let (j0, nb) = extent(bi);
            for r in 0..m {
                c[r * n + j0..][..nb].copy_from_slice(&sb[r * nb..][..nb]);
            }
        }
    });
}

/// The single-threaded three-level blocked kernel — the serial core
/// every parallel band task runs unchanged. See [`gemm_strided`] for the
/// operand contract.
#[allow(clippy::too_many_arguments)]
pub(crate) fn gemm_serial(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    rsa: usize,
    csa: usize,
    b: &[f32],
    rsb: usize,
    csb: usize,
    c: &mut [f32],
    accumulate: bool,
) {
    debug_assert_eq!(c.len(), m * n, "gemm: C extent");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }

    // Resolved once per kernel invocation; `macro_kernel` dispatches to
    // the code compiled for this tier.
    let tier = simd_tier();
    let mc = MC.min(m.next_multiple_of(MR));
    let nc = NC.min(n.next_multiple_of(NR));
    let kc = KC.min(k);

    // Panels are padded to whole MR/NR multiples, so the scratch must be
    // sized for the rounded-up extents.
    let pa_len = mc.next_multiple_of(MR) * kc;
    let pb_len = kc * nc.next_multiple_of(NR);
    with_pack_buffers(pa_len, pb_len, |pa, pb| {
        let mut jc = 0;
        while jc < n {
            let nb = nc.min(n - jc);
            let mut pc = 0;
            while pc < k {
                let kb = kc.min(k - pc);
                // The first depth panel either overwrites C (accumulate
                // off) or adds to the caller's C; later panels always add.
                let add = accumulate || pc > 0;
                pack_b(pb, b, rsb, csb, pc, kb, jc, nb);
                let mut ic = 0;
                while ic < m {
                    let mb = mc.min(m - ic);
                    pack_a(pa, a, rsa, csa, ic, mb, pc, kb);
                    macro_kernel(tier, pa, pb, mb, nb, kb, &mut c[ic * n..], n, jc, add);
                    ic += mb;
                }
                pc += kb;
            }
            jc += nb;
        }
    });
}

#[allow(clippy::too_many_arguments)]
/// Packs `A[ic..ic+mb, pc..pc+kb]` into MR-tall row micro-panels:
/// panel `r` holds rows `ic + r*MR ..`, laid out column-by-column with the
/// `MR` row values contiguous (zero-padded past the matrix edge).
fn pack_a(
    pa: &mut [f32],
    a: &[f32],
    rsa: usize,
    csa: usize,
    ic: usize,
    mb: usize,
    pc: usize,
    kb: usize,
) {
    let mut out = 0;
    let mut ir = 0;
    while ir < mb {
        let rows = MR.min(mb - ir);
        for p in 0..kb {
            let col = (pc + p) * csa;
            let base = (ic + ir) * rsa + col;
            for r in 0..rows {
                pa[out + r] = a[base + r * rsa];
            }
            for r in rows..MR {
                pa[out + r] = 0.0;
            }
            out += MR;
        }
        ir += rows;
    }
}

#[allow(clippy::too_many_arguments)]
/// Packs `B[pc..pc+kb, jc..jc+nb]` into NR-wide column micro-panels:
/// panel `j` holds columns `jc + j*NR ..`, laid out row-by-row with the
/// `NR` column values contiguous (zero-padded past the matrix edge).
fn pack_b(
    pb: &mut [f32],
    b: &[f32],
    rsb: usize,
    csb: usize,
    pc: usize,
    kb: usize,
    jc: usize,
    nb: usize,
) {
    let mut out = 0;
    let mut jr = 0;
    while jr < nb {
        let cols = NR.min(nb - jr);
        for p in 0..kb {
            let base = (pc + p) * rsb + (jc + jr) * csb;
            if csb == 1 {
                // Unit column stride: a full-width panel row is a single
                // contiguous copy (the common non-transposed case).
                pb[out..out + cols].copy_from_slice(&b[base..base + cols]);
            } else {
                for j in 0..cols {
                    pb[out + j] = b[base + j * csb];
                }
            }
            for j in cols..NR {
                pb[out + j] = 0.0;
            }
            out += NR;
        }
        jr += cols;
    }
}

/// Dispatches the macro-kernel to the code compiled for `tier`. All
/// three targets run [`macro_kernel_body`]; only the instruction set
/// LLVM may use differs, and the `mul_add` chains make the results
/// bitwise identical across tiers (see the `simd` module docs).
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)]
fn macro_kernel(
    tier: SimdTier,
    pa: &[f32],
    pb: &[f32],
    mb: usize,
    nb: usize,
    kb: usize,
    c: &mut [f32],
    ldc: usize,
    jc: usize,
    add: bool,
) {
    match tier {
        SimdTier::Scalar => macro_kernel_body(pa, pb, mb, nb, kb, c, ldc, jc, add),
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `simd_tier()` only ever yields a tier that passed
        // `SimdTier::is_supported` on this CPU (the probe, the validated
        // setter, or the panicking env parse), so the required features
        // are present at runtime.
        SimdTier::Fma => unsafe { macro_kernel_fma(pa, pb, mb, nb, kb, c, ldc, jc, add) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above — Avx512 is unreachable on CPUs lacking it.
        SimdTier::Avx512 => unsafe { macro_kernel_avx512(pa, pb, mb, nb, kb, c, ldc, jc, add) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        _ => unreachable!("non-scalar tiers are never supported off x86"),
    }
}

/// [`macro_kernel_body`] compiled with AVX2 + FMA enabled.
///
/// # Safety
///
/// The caller must ensure the CPU supports `avx2` and `fma`.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)]
unsafe fn macro_kernel_fma(
    pa: &[f32],
    pb: &[f32],
    mb: usize,
    nb: usize,
    kb: usize,
    c: &mut [f32],
    ldc: usize,
    jc: usize,
    add: bool,
) {
    macro_kernel_body(pa, pb, mb, nb, kb, c, ldc, jc, add);
}

/// [`macro_kernel_body`] compiled with AVX-512 (F/VL/DQ/BW) enabled.
///
/// # Safety
///
/// The caller must ensure the CPU supports the enabled AVX-512 subsets.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
#[target_feature(enable = "avx512f,avx512vl,avx512dq,avx512bw,avx2,fma")]
#[allow(clippy::too_many_arguments)]
#[allow(unsafe_code)]
unsafe fn macro_kernel_avx512(
    pa: &[f32],
    pb: &[f32],
    mb: usize,
    nb: usize,
    kb: usize,
    c: &mut [f32],
    ldc: usize,
    jc: usize,
    add: bool,
) {
    macro_kernel_body(pa, pb, mb, nb, kb, c, ldc, jc, add);
}

/// Runs the microkernel over every `MR x NR` tile of the packed panels.
/// `inline(always)` so each `#[target_feature]` wrapper gets its own
/// fully-inlined copy compiled under that wrapper's instruction set.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn macro_kernel_body(
    pa: &[f32],
    pb: &[f32],
    mb: usize,
    nb: usize,
    kb: usize,
    c: &mut [f32],
    ldc: usize,
    jc: usize,
    add: bool,
) {
    let mut ir = 0;
    while ir < mb {
        let rows = MR.min(mb - ir);
        let apanel = &pa[(ir / MR) * MR * kb..][..MR * kb];
        let mut jr = 0;
        while jr < nb {
            let cols = NR.min(nb - jr);
            let bpanel = &pb[(jr / NR) * NR * kb..][..NR * kb];
            let acc = microkernel(apanel, bpanel);
            // Spill the register tile into C's valid region.
            for r in 0..rows {
                let crow = &mut c[(ir + r) * ldc + jc + jr..][..cols];
                if add {
                    for (dst, &v) in crow.iter_mut().zip(acc[r].iter()) {
                        *dst += v;
                    }
                } else {
                    crow.copy_from_slice(&acc[r][..cols]);
                }
            }
            jr += cols;
        }
        ir += rows;
    }
}

/// Rank-1-update loop over the packed panels: `acc += a_col * b_row` for
/// each depth step. `apanel` is `kb` groups of `MR` values, `bpanel` is
/// `kb` groups of `NR` values. The accumulator is built locally and
/// returned by value so LLVM promotes it to vector registers for the
/// whole depth loop.
#[inline(always)]
fn microkernel(apanel: &[f32], bpanel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (av, bv) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)) {
        let mut brow = [0.0f32; NR];
        brow.copy_from_slice(bv);
        for r in 0..MR {
            let a = av[r];
            for (dst, &b) in acc[r].iter_mut().zip(brow.iter()) {
                // Explicit fused multiply-add: Rust never contracts
                // `a * b + c` on its own, and without FMA the kernel is
                // capped at half the machine's flops.
                *dst = a.mul_add(b, *dst);
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn filled(len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 37 + 11) % 23) as f32 * 0.25 - 2.5)
            .collect()
    }

    #[test]
    fn matches_reference_across_sizes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 16, 4),
            (9, 17, 33),
            (MR, NR, KC),
            (MR + 1, NR + 1, 3),
            (70, 40, 30),
        ] {
            let a = filled(m * k);
            let b = filled(k * n);
            let mut c = vec![0.0f32; m * n];
            gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c, false);
            let want = reference(m, n, k, &a, &b);
            for (got, want) in c.iter().zip(want.iter()) {
                assert!(
                    (got - want).abs() <= 1e-3 * (1.0 + want.abs()),
                    "{m}x{n}x{k}"
                );
            }
        }
    }

    #[test]
    fn transposed_strides_match_explicit_transpose() {
        let (m, n, k) = (5, 6, 7);
        let a = filled(m * k);
        let b = filled(k * n);
        // A stored transposed as [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        // B stored transposed as [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for j in 0..n {
                bt[j * k + p] = b[p * n + j];
            }
        }
        let want = reference(m, n, k, &a, &b);
        let mut c1 = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &at, 1, m, &b, n, 1, &mut c1, false);
        let mut c2 = vec![0.0f32; m * n];
        gemm_strided(m, n, k, &a, k, 1, &bt, 1, k, &mut c2, false);
        for (got, want) in c1.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-4, "transposed A");
        }
        for (got, want) in c2.iter().zip(want.iter()) {
            assert!((got - want).abs() < 1e-4, "transposed B");
        }
    }

    #[test]
    fn accumulate_adds_to_existing_c() {
        let (m, n, k) = (4, 4, 4);
        let a = filled(m * k);
        let b = filled(k * n);
        let mut c = vec![1.0f32; m * n];
        gemm_strided(m, n, k, &a, k, 1, &b, n, 1, &mut c, true);
        let want = reference(m, n, k, &a, &b);
        for (got, want) in c.iter().zip(want.iter()) {
            assert!((got - (want + 1.0)).abs() < 1e-4);
        }
    }

    #[test]
    fn zero_k_clears_or_keeps_c() {
        let mut c = vec![3.0f32; 4];
        gemm_strided(2, 2, 0, &[], 1, 1, &[], 1, 1, &mut c, false);
        assert_eq!(c, vec![0.0; 4]);
        let mut c = vec![3.0f32; 4];
        gemm_strided(2, 2, 0, &[], 1, 1, &[], 1, 1, &mut c, true);
        assert_eq!(c, vec![3.0; 4]);
    }
}
