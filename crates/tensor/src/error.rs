use std::fmt;

/// Error type for tensor operations.
///
/// All fallible public functions in this crate return [`TensorError`]. The
/// variants carry enough context (the offending shapes or sizes) to diagnose
/// the failure without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or per-axis) did not.
    ShapeMismatch {
        /// What the operation expected.
        expected: Vec<usize>,
        /// What it actually received.
        actual: Vec<usize>,
        /// The operation that failed, e.g. `"matmul"`.
        op: &'static str,
    },
    /// The number of elements implied by a shape does not match a buffer.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements available.
        actual: usize,
        /// The operation that failed.
        op: &'static str,
    },
    /// An operation received a tensor of the wrong rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Received rank.
        actual: usize,
        /// The operation that failed.
        op: &'static str,
    },
    /// A configuration value (stride, padding, group count, …) is invalid.
    InvalidArgument {
        /// Human-readable description of the invalid argument.
        message: String,
    },
}

impl TensorError {
    /// Convenience constructor for [`TensorError::InvalidArgument`].
    pub fn invalid(message: impl Into<String>) -> Self {
        TensorError::InvalidArgument {
            message: message.into(),
        }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "shape mismatch in {op}: expected {expected:?}, got {actual:?}"
            ),
            TensorError::LengthMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "length mismatch in {op}: shape implies {expected} elements, buffer has {actual}"
            ),
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(
                f,
                "rank mismatch in {op}: expected {expected}, got {actual}"
            ),
            TensorError::InvalidArgument { message } => {
                write!(f, "invalid argument: {message}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: vec![2, 3],
            actual: vec![3, 2],
            op: "matmul",
        };
        let msg = err.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn invalid_constructor() {
        let err = TensorError::invalid("stride must be nonzero");
        assert!(err.to_string().contains("stride must be nonzero"));
    }
}
