use std::fmt;

use crate::error::TensorError;

/// The extents of a tensor along each axis, row-major.
///
/// `Shape` is an immutable value type. Scalars are represented as rank-0
/// shapes with one element.
///
/// # Example
///
/// ```
/// use pipebd_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The extent of each axis.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// The extent of axis `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Returns the linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the index rank differs from
    /// the shape rank, or [`TensorError::InvalidArgument`] if any coordinate
    /// is out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                expected: self.dims.len(),
                actual: index.len(),
                op: "offset",
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if i >= d {
                return Err(TensorError::invalid(format!(
                    "index {i} out of bounds for axis {axis} with extent {d}"
                )));
            }
            off += i * strides[axis];
        }
        Ok(off)
    }

    /// Whether two shapes are identical.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[4, 2, 8]);
        assert_eq!(s.numel(), 64);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 2);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
        assert_eq!(s.offset(&[]).unwrap(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_computes_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_bad_rank() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(
            s.offset(&[1]),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn offset_rejects_out_of_bounds() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
    }

    #[test]
    fn display_and_debug_nonempty() {
        let s = Shape::new(&[5]);
        assert_eq!(format!("{s}"), "[5]");
        assert!(!format!("{s:?}").is_empty());
    }

    #[test]
    fn conversions() {
        let a: Shape = vec![1, 2].into();
        let b: Shape = (&[1usize, 2][..]).into();
        assert!(a.same_as(&b));
    }
}
