use std::fmt;

use crate::error::TensorError;
use crate::rng::Rng64;
use crate::shape::Shape;

/// A dense, row-major, `f32` tensor.
///
/// `Tensor` owns its storage. Operations come in two flavours: methods that
/// allocate a result, and `_inplace`/`_assign` methods that mutate `self`
/// (used on hot paths like optimizer updates).
///
/// # Example
///
/// ```
/// use pipebd_tensor::Tensor;
///
/// # fn main() -> Result<(), pipebd_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = a.map(|x| x * 2.0);
/// assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
/// assert_eq!(a.sum(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
    }

    /// Clones into an existing tensor, reusing its buffer when the
    /// capacity suffices (callers holding a live same-size buffer avoid
    /// reallocating; a defaulted/taken tensor still allocates).
    fn clone_from(&mut self, source: &Self) {
        self.shape.clone_from(&source.shape);
        self.data.clone_from(&source.data);
    }
}

impl Tensor {
    /// A tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// A tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Builds a tensor from a buffer and shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the number of elements implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
                op: "from_vec",
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Standard-normal-initialized tensor.
    pub fn randn(dims: &[usize], rng: &mut Rng64) -> Self {
        let mut t = Tensor::zeros(dims);
        rng.fill_normal(&mut t.data);
        t
    }

    /// Uniform-initialized tensor in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let mut t = Tensor::zeros(dims);
        rng.fill_uniform(&mut t.data, lo, hi);
        t
    }

    /// Kaiming/He normal initialization for a weight tensor with the given
    /// fan-in (suitable for ReLU networks).
    pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut Rng64) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        let mut t = Tensor::zeros(dims);
        for v in &mut t.data {
            *v = rng.normal_with(0.0, std);
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The extents as a slice (shorthand for `shape().dims()`).
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Read-only view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation failures from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32, TensorError> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Propagates index validation failures from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor, TensorError> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
                op: "reshape",
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor, TensorError> {
        self.check_same_shape(other, "zip")?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip(other, |a, b| a * b)
    }

    /// `self += other`, elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "add_assign")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// `self += alpha * other` (axpy), elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), TensorError> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Sets every element to zero (buffer reuse for gradient accumulators).
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max_value(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element (first on ties); `None` when empty.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Maximum absolute difference against another tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32, TensorError> {
        self.check_same_shape(other, "max_abs_diff")?;
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max))
    }

    /// Whether all elements are within `tol` of another tensor's.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> Result<bool, TensorError> {
        Ok(self.max_abs_diff(other)? <= tol)
    }

    /// Splits a batched tensor (axis 0) into `parts` nearly-equal chunks.
    ///
    /// The first `numel % parts` chunks get one extra row, mirroring how a
    /// data-parallel runtime shards a batch.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `parts == 0`, the tensor
    /// is rank-0, or there are fewer rows than parts.
    pub fn split_batch(&self, parts: usize) -> Result<Vec<Tensor>, TensorError> {
        if parts == 0 {
            return Err(TensorError::invalid("split_batch: parts must be > 0"));
        }
        if self.shape.rank() == 0 {
            return Err(TensorError::invalid("split_batch: tensor is rank-0"));
        }
        let batch = self.shape.dim(0);
        if batch < parts {
            return Err(TensorError::invalid(format!(
                "split_batch: cannot split batch {batch} into {parts} parts"
            )));
        }
        let row = self.numel() / batch;
        let base = batch / parts;
        let extra = batch % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0usize;
        for p in 0..parts {
            let rows = base + usize::from(p < extra);
            let mut dims = self.shape.dims().to_vec();
            dims[0] = rows;
            let data = self.data[start * row..(start + rows) * row].to_vec();
            out.push(Tensor {
                shape: Shape::new(&dims),
                data,
            });
            start += rows;
        }
        Ok(out)
    }

    /// Concatenates tensors along axis 0. All non-batch dims must match.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `parts` is empty, or
    /// [`TensorError::ShapeMismatch`] if trailing dimensions differ.
    pub fn cat_batch(parts: &[Tensor]) -> Result<Tensor, TensorError> {
        let refs: Vec<&Tensor> = parts.iter().collect();
        Tensor::cat_batch_refs(&refs)
    }

    /// [`Tensor::cat_batch`] over borrowed tensors — lets callers holding
    /// shared handles (e.g. [`SharedTensor`]) concatenate without first
    /// materializing owned clones.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `parts` is empty, or
    /// [`TensorError::ShapeMismatch`] if trailing dimensions differ.
    ///
    /// [`SharedTensor`]: crate::SharedTensor
    pub fn cat_batch_refs(parts: &[&Tensor]) -> Result<Tensor, TensorError> {
        let first = *parts
            .first()
            .ok_or_else(|| TensorError::invalid("cat_batch: no tensors given"))?;
        let tail = &first.dims()[1..];
        let mut batch = 0usize;
        for p in parts {
            if &p.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    expected: first.dims().to_vec(),
                    actual: p.dims().to_vec(),
                    op: "cat_batch",
                });
            }
            batch += p.dims()[0];
        }
        let mut dims = first.dims().to_vec();
        dims[0] = batch;
        let mut data = Vec::with_capacity(Shape::new(&dims).numel());
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor {
            shape: Shape::new(&dims),
            data,
        })
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<(), TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                expected: self.shape.dims().to_vec(),
                actual: other.shape.dims().to_vec(),
                op,
            });
        }
        Ok(())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.numel() <= 16 {
            write!(f, "Tensor({}, {:?})", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor({}, [{} elements, sum {:.4}])",
                self.shape,
                self.numel(),
                self.sum()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3]).sum(), 3.0);
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 5], &[2, 2]).is_err());
        assert!(Tensor::from_vec(vec![1.0; 4], &[2, 2]).is_ok());
    }

    #[test]
    fn indexing_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 7.0).unwrap();
        assert_eq!(t.at(&[1, 2]).unwrap(), 7.0);
        assert_eq!(t.at(&[0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn elementwise_math() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(matches!(
            a.add(&b),
            Err(TensorError::ShapeMismatch { op: "zip", .. })
        ));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
        a.scale(3.0);
        assert_eq!(a.data(), &[0.0, -3.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.max_value(), 3.0);
        assert_eq!(t.argmax(), Some(2));
        assert_eq!(t.sq_norm(), 14.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at(&[1, 0]).unwrap(), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn split_and_cat_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|x| x as f32).collect(), &[6, 4]).unwrap();
        let parts = t.split_batch(4).unwrap();
        assert_eq!(parts.len(), 4);
        // 6 rows into 4 parts: 2, 2, 1, 1.
        assert_eq!(parts[0].dims(), &[2, 4]);
        assert_eq!(parts[2].dims(), &[1, 4]);
        let whole = Tensor::cat_batch(&parts).unwrap();
        assert_eq!(whole, t);
    }

    #[test]
    fn split_batch_validations() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.split_batch(0).is_err());
        assert!(t.split_batch(3).is_err());
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.1], &[2]).unwrap();
        assert!((a.max_abs_diff(&b).unwrap() - 0.1).abs() < 1e-6);
        assert!(a.allclose(&b, 0.2).unwrap());
        assert!(!a.allclose(&b, 0.05).unwrap());
    }

    #[test]
    fn kaiming_scales_with_fan_in() {
        let mut rng = Rng64::seed_from_u64(3);
        let w = Tensor::kaiming(&[64, 64], 64, &mut rng);
        let std = (w.sq_norm() / w.numel() as f32).sqrt();
        let expected = (2.0f32 / 64.0).sqrt();
        assert!((std - expected).abs() < 0.02, "std {std} vs {expected}");
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Tensor::zeros(&[2])).is_empty());
        assert!(!format!("{:?}", Tensor::zeros(&[100])).is_empty());
    }
}
