//! im2col lowering: grouped 2-D convolution and both adjoints as GEMM.
//!
//! The [`KernelPolicy::Blocked`] convolution path. Per `(batch, group)`
//! pair the input patch matrix is materialized once:
//!
//! ```text
//! col[(icg*k + ky)*k + kx, oy*ow + ox] = x[b, g*cig + icg, iy, ix]   (0 if padded)
//!         ckk rows                         ohow columns
//!
//! forward      out[cog, ohow]  = W_g[cog, ckk]  @ col[ckk, ohow]
//! grad input   dcol[ckk, ohow] = W_gᵀ[ckk, cog] @ dy_g[cog, ohow]   then col2im⁺
//! grad weight  dW_g[cog, ckk] += dy_g[cog, ohow] @ colᵀ[ohow, ckk]
//! ```
//!
//! All three products run on the packed blocked GEMM (`gemm` module); the
//! weight-gradient accumulates straight into `dW` across batches through
//! GEMM's accumulate mode, and `col2im⁺` is the scatter-add inverse of the
//! patch lowering. Row order of `col` matches the naive kernels' reduction
//! order `(icg, ky, kx)`, so both policies sum contributions in the same
//! sequence.
//!
//! Pointwise convolutions (`k == 1`, stride 1, no padding) skip the
//! lowering entirely: the group's input block *is* the column matrix, so
//! the GEMM reads `x` (and writes `dx`) in place.
//!
//! The column matrix lives in thread-local scratch ([`with_col_buffer`]):
//! steady-state training re-lowers into the same allocation every step.
//!
//! [`KernelPolicy::Blocked`]: crate::KernelPolicy::Blocked

use std::cell::RefCell;

use crate::conv::Conv2dSpec;
use crate::gemm::gemm_strided;

thread_local! {
    /// Column-matrix scratch, reused across calls on this thread.
    static COL_BUFFER: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's column scratch grown to `len`.
fn with_col_buffer<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    COL_BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Per-call geometry, precomputed once by the dispatching kernels.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Input spatial extents.
    pub h: usize,
    pub w: usize,
    /// Output spatial extents.
    pub oh: usize,
    pub ow: usize,
}

impl ConvGeom {
    fn cig(&self, spec: &Conv2dSpec) -> usize {
        spec.in_channels / spec.groups
    }

    fn cog(&self, spec: &Conv2dSpec) -> usize {
        spec.out_channels / spec.groups
    }

    /// Whether the lowering is the identity (the input block is `col`).
    fn pointwise(&self, spec: &Conv2dSpec) -> bool {
        spec.kernel == 1 && spec.stride == 1 && spec.padding == 0
    }
}

/// Fills `col[ckk, oh*ow]` with the patches of one `(batch, group)` input
/// block `xg[cig, h*w]`.
fn im2col(col: &mut [f32], xg: &[f32], spec: &Conv2dSpec, g: &ConvGeom) {
    let (k, s, pad) = (spec.kernel, spec.stride, spec.padding as isize);
    let (h, w, oh, ow) = (g.h, g.w, g.oh, g.ow);
    let ohow = oh * ow;
    for icg in 0..g.cig(spec) {
        let xc = &xg[icg * h * w..][..h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut col[((icg * k + ky) * k + kx) * ohow..][..ohow];
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad;
                    let dst = &mut row[oy * ow..][..ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[iy as usize * w..][..w];
                    // ox valid iff 0 <= ox*s + kx - pad < w.
                    let lo = (pad - kx as isize).max(0) as usize;
                    let lo = lo.div_ceil(s).min(ow);
                    let hi_num = w as isize - 1 + pad - kx as isize;
                    let hi = if hi_num < 0 {
                        0
                    } else {
                        ((hi_num as usize) / s + 1).min(ow)
                    };
                    let hi = hi.max(lo);
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    if s == 1 {
                        let start = (lo as isize + kx as isize - pad) as usize;
                        dst[lo..hi].copy_from_slice(&xrow[start..start + (hi - lo)]);
                    } else {
                        for (ox, v) in dst[lo..hi].iter_mut().enumerate() {
                            let ix = ((lo + ox) * s + kx) as isize - pad;
                            *v = xrow[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Scatter-adds `col[ckk, oh*ow]` back into one input block `dxg[cig, h*w]`
/// — the exact adjoint of [`im2col`].
fn col2im_add(dxg: &mut [f32], col: &[f32], spec: &Conv2dSpec, g: &ConvGeom) {
    let (k, s, pad) = (spec.kernel, spec.stride, spec.padding as isize);
    let (h, w, oh, ow) = (g.h, g.w, g.oh, g.ow);
    let ohow = oh * ow;
    for icg in 0..g.cig(spec) {
        let dxc = &mut dxg[icg * h * w..][..h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = &col[((icg * k + ky) * k + kx) * ohow..][..ohow];
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dxrow = &mut dxc[iy as usize * w..][..w];
                    let src = &row[oy * ow..][..ow];
                    for (ox, &v) in src.iter().enumerate() {
                        let ix = (ox * s + kx) as isize - pad;
                        if ix >= 0 && ix < w as isize {
                            dxrow[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Forward convolution via im2col + GEMM. `out` must be zero-length-checked
/// by the caller: it is fully overwritten, shape `[n, co, oh, ow]`.
pub(crate) fn conv2d_blocked(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    if g.pointwise(spec) {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                let wg = &w[gi * cog * ckk..][..cog * ckk];
                let og = &mut out[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                gemm_strided(cog, ohow, ckk, wg, ckk, 1, xg, hw, 1, og, false);
            }
        }
        return;
    }
    with_col_buffer(ckk * ohow, |col| {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                im2col(col, xg, spec, g);
                let wg = &w[gi * cog * ckk..][..cog * ckk];
                let og = &mut out[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                gemm_strided(cog, ohow, ckk, wg, ckk, 1, col, ohow, 1, og, false);
            }
        }
    });
}

/// Input gradient via GEMM + col2im. `dx` has shape `[n, ci, h, w]` and is
/// fully overwritten.
pub(crate) fn conv2d_grad_input_blocked(
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    if g.pointwise(spec) {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                let wg = &w[gi * cog * ckk..][..cog * ckk];
                let dxg = &mut dx[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                // dxg[ckk, hw] = W_gᵀ @ dy_g  (ckk == cig, hw == ohow here).
                gemm_strided(ckk, ohow, cog, wg, 1, ckk, dyg, ohow, 1, dxg, false);
            }
        }
        return;
    }
    dx.fill(0.0);
    with_col_buffer(ckk * ohow, |dcol| {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                let wg = &w[gi * cog * ckk..][..cog * ckk];
                gemm_strided(ckk, ohow, cog, wg, 1, ckk, dyg, ohow, 1, dcol, false);
                let dxg = &mut dx[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                col2im_add(dxg, dcol, spec, g);
            }
        }
    });
}

/// Weight gradient via im2col + accumulating GEMM. `dw` has shape
/// `[co, cig, k, k]`; contributions are summed over the batch in batch
/// order (matching the naive kernel), starting from the zeros the caller
/// provides.
pub(crate) fn conv2d_grad_weight_blocked(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    if g.pointwise(spec) {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                let dwg = &mut dw[gi * cog * ckk..][..cog * ckk];
                // dW_g[cog, ckk] += dy_g[cog, ohow] @ xgᵀ[ohow, ckk].
                gemm_strided(cog, ckk, ohow, dyg, ohow, 1, xg, 1, hw, dwg, true);
            }
        }
        return;
    }
    with_col_buffer(ckk * ohow, |col| {
        for b in 0..g.n {
            for gi in 0..spec.groups {
                let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
                im2col(col, xg, spec, g);
                let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
                let dwg = &mut dw[gi * cog * ckk..][..cog * ckk];
                gemm_strided(cog, ckk, ohow, dyg, ohow, 1, col, 1, ohow, dwg, true);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_col2im_are_adjoint() {
        // ⟨im2col(x), c⟩ == ⟨x, col2im(c)⟩ for arbitrary x and c.
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 2,
            kernel: 3,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let g = ConvGeom {
            n: 1,
            h: 5,
            w: 4,
            oh: spec.out_extent(5).unwrap(),
            ow: spec.out_extent(4).unwrap(),
        };
        let ckk = 2 * 9;
        let ohow = g.oh * g.ow;
        let x: Vec<f32> = (0..2 * 5 * 4).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..ckk * ohow).map(|i| (i as f32).cos()).collect();
        let mut col = vec![0.0f32; ckk * ohow];
        im2col(&mut col, &x, &spec, &g);
        let mut back = vec![0.0f32; 2 * 5 * 4];
        col2im_add(&mut back, &c, &spec, &g);
        let lhs: f64 = col
            .iter()
            .zip(c.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_padding_rows_are_zero() {
        let spec = Conv2dSpec::dense(1, 1, 3, 1, 1);
        let g = ConvGeom {
            n: 1,
            h: 3,
            w: 3,
            oh: 3,
            ow: 3,
        };
        let x = vec![1.0f32; 9];
        let mut col = vec![f32::NAN; 9 * 9];
        im2col(&mut col, &x, &spec, &g);
        // Top-left output (oy=0, ox=0), kernel tap (ky=0, kx=0) reads the
        // padded corner: col[row 0, col 0] must be zero.
        assert_eq!(col[0], 0.0);
        // Center tap over the interior is the input itself.
        let center = 4 * 9; // (ky=1, kx=1)
        assert_eq!(&col[center + 4..center + 5], &[1.0]);
        assert!(col.iter().all(|v| !v.is_nan()), "every cell written");
    }
}
