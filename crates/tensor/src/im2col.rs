//! im2col lowering: grouped 2-D convolution and both adjoints as GEMM.
//!
//! The [`KernelPolicy::Blocked`] convolution path. Per `(batch, group)`
//! pair the input patch matrix is materialized once:
//!
//! ```text
//! col[(icg*k + ky)*k + kx, oy*ow + ox] = x[b, g*cig + icg, iy, ix]   (0 if padded)
//!         ckk rows                         ohow columns
//!
//! forward      out[cog, ohow]  = W_g[cog, ckk]  @ col[ckk, ohow]
//! grad input   dcol[ckk, ohow] = W_gᵀ[ckk, cog] @ dy_g[cog, ohow]   then col2im⁺
//! grad weight  dW_g[cog, ckk] += dy_g[cog, ohow] @ colᵀ[ohow, ckk]
//! ```
//!
//! All three products run on the packed blocked GEMM (`gemm` module); the
//! weight-gradient accumulates straight into `dW` across batches through
//! GEMM's accumulate mode, and `col2im⁺` is the scatter-add inverse of the
//! patch lowering. Row order of `col` matches the naive kernels' reduction
//! order `(icg, ky, kx)`, so both policies sum contributions in the same
//! sequence.
//!
//! Pointwise convolutions (`k == 1`, stride 1, no padding) skip the
//! lowering entirely: the group's input block *is* the column matrix, so
//! the GEMM reads `x` (and writes `dx`) in place.
//!
//! The column matrix lives in thread-local scratch ([`with_col_buffer`]):
//! steady-state training re-lowers into the same allocation every step.
//!
//! [`KernelPolicy::Blocked`]: crate::KernelPolicy::Blocked

use std::cell::RefCell;

use crate::conv::Conv2dSpec;
use crate::gemm::gemm_strided;
use crate::parallel::{self, ComputePool};

thread_local! {
    /// Column-matrix scratch, reused across calls on this thread.
    static COL_BUFFER: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with this thread's column scratch grown to `len`.
fn with_col_buffer<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    COL_BUFFER.with(|cell| {
        let mut buf = cell.borrow_mut();
        if buf.len() < len {
            buf.resize(len, 0.0);
        }
        f(&mut buf[..len])
    })
}

/// Per-call geometry, precomputed once by the dispatching kernels.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    /// Batch size.
    pub n: usize,
    /// Input spatial extents.
    pub h: usize,
    pub w: usize,
    /// Output spatial extents.
    pub oh: usize,
    pub ow: usize,
}

impl ConvGeom {
    fn cig(&self, spec: &Conv2dSpec) -> usize {
        spec.in_channels / spec.groups
    }

    fn cog(&self, spec: &Conv2dSpec) -> usize {
        spec.out_channels / spec.groups
    }

    /// Whether the lowering is the identity (the input block is `col`).
    fn pointwise(&self, spec: &Conv2dSpec) -> bool {
        spec.kernel == 1 && spec.stride == 1 && spec.padding == 0
    }
}

/// Fills `col[ckk, oh*ow]` with the patches of one `(batch, group)` input
/// block `xg[cig, h*w]`.
fn im2col(col: &mut [f32], xg: &[f32], spec: &Conv2dSpec, g: &ConvGeom) {
    let (k, s, pad) = (spec.kernel, spec.stride, spec.padding as isize);
    let (h, w, oh, ow) = (g.h, g.w, g.oh, g.ow);
    let ohow = oh * ow;
    for icg in 0..g.cig(spec) {
        let xc = &xg[icg * h * w..][..h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = &mut col[((icg * k + ky) * k + kx) * ohow..][..ohow];
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad;
                    let dst = &mut row[oy * ow..][..ow];
                    if iy < 0 || iy >= h as isize {
                        dst.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[iy as usize * w..][..w];
                    // ox valid iff 0 <= ox*s + kx - pad < w.
                    let lo = (pad - kx as isize).max(0) as usize;
                    let lo = lo.div_ceil(s).min(ow);
                    let hi_num = w as isize - 1 + pad - kx as isize;
                    let hi = if hi_num < 0 {
                        0
                    } else {
                        ((hi_num as usize) / s + 1).min(ow)
                    };
                    let hi = hi.max(lo);
                    dst[..lo].fill(0.0);
                    dst[hi..].fill(0.0);
                    if s == 1 {
                        let start = (lo as isize + kx as isize - pad) as usize;
                        dst[lo..hi].copy_from_slice(&xrow[start..start + (hi - lo)]);
                    } else {
                        for (ox, v) in dst[lo..hi].iter_mut().enumerate() {
                            let ix = ((lo + ox) * s + kx) as isize - pad;
                            *v = xrow[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Scatter-adds `col[ckk, oh*ow]` back into one input block `dxg[cig, h*w]`
/// — the exact adjoint of [`im2col`].
fn col2im_add(dxg: &mut [f32], col: &[f32], spec: &Conv2dSpec, g: &ConvGeom) {
    let (k, s, pad) = (spec.kernel, spec.stride, spec.padding as isize);
    let (h, w, oh, ow) = (g.h, g.w, g.oh, g.ow);
    let ohow = oh * ow;
    for icg in 0..g.cig(spec) {
        let dxc = &mut dxg[icg * h * w..][..h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = &col[((icg * k + ky) * k + kx) * ohow..][..ohow];
                for oy in 0..oh {
                    let iy = (oy * s + ky) as isize - pad;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let dxrow = &mut dxc[iy as usize * w..][..w];
                    let src = &row[oy * ow..][..ow];
                    for (ox, &v) in src.iter().enumerate() {
                        let ix = (ox * s + kx) as isize - pad;
                        if ix >= 0 && ix < w as isize {
                            dxrow[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Computes the output block of one `(batch, group)` unit. Inner GEMMs
/// go through [`gemm_strided`], so a *single*-unit conv called outside a
/// pool task still parallelizes over its GEMM bands, while unit bodies
/// running *as* pool tasks execute serially (nested decomposition is
/// suppressed) — either way the values are bitwise identical.
fn conv2d_unit(x: &[f32], w: &[f32], og: &mut [f32], spec: &Conv2dSpec, g: &ConvGeom, u: usize) {
    let (b, gi) = (u / spec.groups, u % spec.groups);
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
    let wg = &w[gi * cog * ckk..][..cog * ckk];
    if g.pointwise(spec) {
        gemm_strided(cog, ohow, ckk, wg, ckk, 1, xg, hw, 1, og, false);
    } else {
        with_col_buffer(ckk * ohow, |col| {
            im2col(col, xg, spec, g);
            gemm_strided(cog, ohow, ckk, wg, ckk, 1, col, ohow, 1, og, false);
        });
    }
}

/// Chunks `units * block`-element `data` into one contiguous unit range
/// per pool lane and runs `f(first_unit, chunk)` for each in parallel.
/// Unit `u`'s block is `data[u * block ..][.. block]`, so contiguous unit
/// ranges are contiguous slices — tasks borrow disjoint `chunks_mut`.
fn par_units(
    pool: &ComputePool,
    data: &mut [f32],
    block: usize,
    f: impl Fn(usize, &mut [f32]) + Send + Sync,
) {
    let units = data.len() / block;
    let per = units.div_ceil(pool.size());
    let f = &f;
    pool.run_scope(|s| {
        for (ci, chunk) in data.chunks_mut(per * block).enumerate() {
            s.spawn(move || f(ci * per, chunk));
        }
    });
}

/// Forward convolution via im2col + GEMM. `out` must be zero-length-checked
/// by the caller: it is fully overwritten, shape `[n, co, oh, ow]`.
///
/// With an active compute pool the `(batch, group)` units are split into
/// contiguous ranges, one range per lane; every unit's output block is
/// produced whole by one worker running the unchanged serial unit body,
/// so the result is bitwise identical to the serial loop.
pub(crate) fn conv2d_blocked(
    x: &[f32],
    w: &[f32],
    out: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let block = g.cog(spec) * g.oh * g.ow;
    let units = g.n * spec.groups;
    if units >= 2 {
        if let Some(pool) = parallel::active_pool() {
            par_units(&pool, out, block, |u0, chunk| {
                for (i, og) in chunk.chunks_mut(block).enumerate() {
                    conv2d_unit(x, w, og, spec, g, u0 + i);
                }
            });
            return;
        }
    }
    for (u, og) in out.chunks_mut(block).enumerate() {
        conv2d_unit(x, w, og, spec, g, u);
    }
}

/// Computes the input-gradient block of one `(batch, group)` unit —
/// zeroing its own block first, so units are independent.
fn grad_input_unit(
    dy: &[f32],
    w: &[f32],
    dxg: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
    u: usize,
) {
    let (b, gi) = (u / spec.groups, u % spec.groups);
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let ohow = g.oh * g.ow;
    let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
    let wg = &w[gi * cog * ckk..][..cog * ckk];
    if g.pointwise(spec) {
        // dxg[ckk, hw] = W_gᵀ @ dy_g  (ckk == cig, hw == ohow here).
        gemm_strided(ckk, ohow, cog, wg, 1, ckk, dyg, ohow, 1, dxg, false);
    } else {
        dxg.fill(0.0);
        with_col_buffer(ckk * ohow, |dcol| {
            gemm_strided(ckk, ohow, cog, wg, 1, ckk, dyg, ohow, 1, dcol, false);
            col2im_add(dxg, dcol, spec, g);
        });
    }
}

/// Input gradient via GEMM + col2im. `dx` has shape `[n, ci, h, w]` and is
/// fully overwritten. Parallelizes over `(batch, group)` units exactly
/// like [`conv2d_blocked`]; each unit's `dx` block (zero-fill, GEMM, and
/// scatter-add) is owned end to end by one worker.
pub(crate) fn conv2d_grad_input_blocked(
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let block = g.cig(spec) * g.h * g.w;
    let units = g.n * spec.groups;
    if units >= 2 {
        if let Some(pool) = parallel::active_pool() {
            par_units(&pool, dx, block, |u0, chunk| {
                for (i, dxg) in chunk.chunks_mut(block).enumerate() {
                    grad_input_unit(dy, w, dxg, spec, g, u0 + i);
                }
            });
            return;
        }
    }
    for (u, dxg) in dx.chunks_mut(block).enumerate() {
        grad_input_unit(dy, w, dxg, spec, g, u);
    }
}

/// Accumulates the weight gradient of one group over every batch, in
/// batch order, into its `dw` block (`dwg`, shape `[cog, ckk]`).
fn grad_weight_group(
    x: &[f32],
    dy: &[f32],
    dwg: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
    gi: usize,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    if g.pointwise(spec) {
        for b in 0..g.n {
            let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
            let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
            // dW_g[cog, ckk] += dy_g[cog, ohow] @ xgᵀ[ohow, ckk].
            gemm_strided(cog, ckk, ohow, dyg, ohow, 1, xg, 1, hw, dwg, true);
        }
        return;
    }
    with_col_buffer(ckk * ohow, |col| {
        for b in 0..g.n {
            let xg = &x[(b * spec.in_channels + gi * cig) * hw..][..cig * hw];
            im2col(col, xg, spec, g);
            let dyg = &dy[(b * spec.out_channels + gi * cog) * ohow..][..cog * ohow];
            gemm_strided(cog, ckk, ohow, dyg, ohow, 1, col, 1, ohow, dwg, true);
        }
    });
}

/// Accumulates rows `[r0, r0 + rows)` of a dense (`groups == 1`) weight
/// gradient over every batch in batch order. Each band re-lowers the
/// input per batch — duplicated im2col work, traded for keeping every
/// `dW` element's whole accumulation chain on one worker.
fn grad_weight_rows(
    x: &[f32],
    dy: &[f32],
    dwband: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
    r0: usize,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    let (hw, ohow) = (g.h * g.w, g.oh * g.ow);
    let rows = dwband.len() / ckk;
    if g.pointwise(spec) {
        for b in 0..g.n {
            let xg = &x[b * cig * hw..][..cig * hw];
            let dyr = &dy[(b * cog + r0) * ohow..][..rows * ohow];
            gemm_strided(rows, ckk, ohow, dyr, ohow, 1, xg, 1, hw, dwband, true);
        }
        return;
    }
    with_col_buffer(ckk * ohow, |col| {
        for b in 0..g.n {
            let xg = &x[b * cig * hw..][..cig * hw];
            im2col(col, xg, spec, g);
            let dyr = &dy[(b * cog + r0) * ohow..][..rows * ohow];
            gemm_strided(rows, ckk, ohow, dyr, ohow, 1, col, 1, ohow, dwband, true);
        }
    });
}

/// Weight gradient via im2col + accumulating GEMM. `dw` has shape
/// `[co, cig, k, k]`; contributions are summed over the batch in batch
/// order (matching the naive kernel), starting from the zeros the caller
/// provides.
///
/// `dW` accumulates *across* batches, so the batch axis cannot be split
/// without reordering sums. Instead, an active pool splits the
/// **output**: grouped convs parallelize over `dw`'s per-group blocks,
/// dense convs over `dW` row bands ([`grad_weight_rows`]) — every `dW`
/// element's accumulation chain stays on one worker, in batch order,
/// keeping parallel results bitwise identical to serial ones.
pub(crate) fn conv2d_grad_weight_blocked(
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    spec: &Conv2dSpec,
    g: &ConvGeom,
) {
    let (cig, cog) = (g.cig(spec), g.cog(spec));
    let ckk = cig * spec.kernel * spec.kernel;
    if let Some(pool) = parallel::active_pool() {
        if spec.groups >= 2 {
            par_units(&pool, dw, cog * ckk, |g0, chunk| {
                for (i, dwg) in chunk.chunks_mut(cog * ckk).enumerate() {
                    grad_weight_group(x, dy, dwg, spec, g, g0 + i);
                }
            });
            return;
        }
        let band = cog.div_ceil(pool.size());
        if band < cog {
            pool.run_scope(|s| {
                for (bi, dwband) in dw.chunks_mut(band * ckk).enumerate() {
                    s.spawn(move || grad_weight_rows(x, dy, dwband, spec, g, bi * band));
                }
            });
            return;
        }
    }
    for (gi, dwg) in dw.chunks_mut(cog * ckk).enumerate() {
        grad_weight_group(x, dy, dwg, spec, g, gi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn im2col_col2im_are_adjoint() {
        // ⟨im2col(x), c⟩ == ⟨x, col2im(c)⟩ for arbitrary x and c.
        let spec = Conv2dSpec {
            in_channels: 2,
            out_channels: 2,
            kernel: 3,
            stride: 2,
            padding: 1,
            groups: 1,
        };
        let g = ConvGeom {
            n: 1,
            h: 5,
            w: 4,
            oh: spec.out_extent(5).unwrap(),
            ow: spec.out_extent(4).unwrap(),
        };
        let ckk = 2 * 9;
        let ohow = g.oh * g.ow;
        let x: Vec<f32> = (0..2 * 5 * 4).map(|i| (i as f32).sin()).collect();
        let c: Vec<f32> = (0..ckk * ohow).map(|i| (i as f32).cos()).collect();
        let mut col = vec![0.0f32; ckk * ohow];
        im2col(&mut col, &x, &spec, &g);
        let mut back = vec![0.0f32; 2 * 5 * 4];
        col2im_add(&mut back, &c, &spec, &g);
        let lhs: f64 = col
            .iter()
            .zip(c.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = x
            .iter()
            .zip(back.iter())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn im2col_padding_rows_are_zero() {
        let spec = Conv2dSpec::dense(1, 1, 3, 1, 1);
        let g = ConvGeom {
            n: 1,
            h: 3,
            w: 3,
            oh: 3,
            ow: 3,
        };
        let x = vec![1.0f32; 9];
        let mut col = vec![f32::NAN; 9 * 9];
        im2col(&mut col, &x, &spec, &g);
        // Top-left output (oy=0, ox=0), kernel tap (ky=0, kx=0) reads the
        // padded corner: col[row 0, col 0] must be zero.
        assert_eq!(col[0], 0.0);
        // Center tap over the interior is the input itself.
        let center = 4 * 9; // (ky=1, kx=1)
        assert_eq!(&col[center + 4..center + 5], &[1.0]);
        assert!(col.iter().all(|v| !v.is_nan()), "every cell written");
    }
}
