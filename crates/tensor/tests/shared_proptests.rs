//! Property-based tests for the copy-on-write [`SharedTensor`] handle.
//!
//! The executor data plane relies on one invariant above all: a tensor
//! relayed by shared handle is immutable through that handle, and the few
//! legitimate mutation sites (via `make_mut`) must never be observable
//! through an alias. These properties pin that down over random data and
//! random mutations.

use pipebd_tensor::{SharedTensor, Tensor};
use proptest::prelude::*;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn aliased_mutation_is_unobservable(data in vecf(12), scale in -3.0f32..3.0, shift in -3.0f32..3.0) {
        let original = Tensor::from_vec(data, &[3, 4]).unwrap();
        let a = SharedTensor::new(original.clone());
        let mut b = a.clone();
        let mut c = b.clone();
        b.make_mut().scale(scale);
        c.make_mut().map_inplace(|x| x + shift);
        // The untouched alias still sees the original values…
        prop_assert_eq!(&*a, &original);
        // …and each mutated handle sees exactly its own mutation.
        let mut expect_b = original.clone();
        expect_b.scale(scale);
        let mut expect_c = original.clone();
        expect_c.map_inplace(|x| x + shift);
        prop_assert_eq!(&*b, &expect_b);
        prop_assert_eq!(&*c, &expect_c);
        prop_assert!(!a.ptr_eq(&b));
        prop_assert!(!a.ptr_eq(&c));
    }

    #[test]
    fn unique_make_mut_is_in_place(data in vecf(8), value in -2.0f32..2.0) {
        let mut a = SharedTensor::new(Tensor::from_vec(data, &[8]).unwrap());
        let ptr = a.data().as_ptr();
        a.make_mut().fill(value);
        // Sole ownership: mutation must not have copied the buffer.
        prop_assert_eq!(a.data().as_ptr(), ptr);
        prop_assert_eq!(&*a, &Tensor::full(&[8], value));
    }

    #[test]
    fn into_tensor_preserves_data_under_aliasing(data in vecf(10)) {
        let t = Tensor::from_vec(data, &[2, 5]).unwrap();
        let a = SharedTensor::new(t.clone());
        let b = a.clone();
        // Unwrapping an aliased handle clones; unwrapping the survivor
        // moves. Both must yield the original values.
        prop_assert_eq!(b.into_tensor(), t.clone());
        prop_assert_eq!(a.into_tensor(), t);
    }

    #[test]
    fn clone_from_reuses_the_destination_buffer(src in vecf(16), dst in vecf(16)) {
        let src = Tensor::from_vec(src, &[4, 4]).unwrap();
        let mut dst = Tensor::from_vec(dst, &[16]).unwrap();
        let ptr = dst.data().as_ptr();
        dst.clone_from(&src);
        prop_assert_eq!(&dst, &src);
        // Equal element counts: the write-back path must reuse storage.
        prop_assert_eq!(dst.data().as_ptr(), ptr);
    }
}
