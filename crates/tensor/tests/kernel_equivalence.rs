//! Property tests pinning the blocked compute plane to the naive oracle.
//!
//! Every hot kernel exists twice (see `KernelPolicy`): the naive direct
//! loops and the im2col/blocked-GEMM path. These properties sample
//! convolution geometries across strides, paddings, group counts
//! (including depthwise), and non-square inputs, and assert the blocked
//! forward and both adjoints match the oracle within tight tolerance —
//! the two paths sum identical products in the same per-element order, so
//! they may differ only by FMA rounding contraction.
//!
//! The explicit `*_with` kernel variants are used throughout: tests run
//! concurrently and must not touch the process-global policy.

use pipebd_tensor::{
    conv2d_grad_input_with, conv2d_grad_weight_with, conv2d_with, Conv2dSpec, KernelPolicy, Rng64,
    Tensor,
};
use proptest::prelude::*;

/// Asserts the blocked result matches the oracle within FMA-contraction
/// tolerance.
fn assert_close(naive: &Tensor, blocked: &Tensor, what: &str) {
    assert_eq!(naive.dims(), blocked.dims(), "{what} dims");
    let scale = 1.0 + naive.data().iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let diff = naive.max_abs_diff(blocked).unwrap();
    assert!(
        diff <= 1e-4 * scale,
        "{what}: max diff {diff} (scale {scale})"
    );
}

/// Builds a spec from sampled raw components; `groups` is 1 (dense), 2
/// (grouped), or `in_channels` (depthwise) depending on the selector.
fn spec_from(
    gsel: usize,
    cim: usize,
    com: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Conv2dSpec {
    let groups = match gsel {
        0 => 1,
        1 => 2,
        // Depthwise: one channel per group on both sides.
        _ => 2 * cim,
    };
    let (in_channels, out_channels) = if gsel == 2 {
        (2 * cim, 2 * cim)
    } else {
        (groups * cim, groups * com)
    };
    Conv2dSpec {
        in_channels,
        out_channels,
        kernel: k,
        stride,
        padding,
        groups,
    }
}

/// Runs all three kernels under both policies and cross-checks them.
fn check_all(spec: Conv2dSpec, n: usize, h: usize, w: usize, seed: u64) {
    let mut rng = Rng64::seed_from_u64(seed);
    let x = Tensor::randn(&[n, spec.in_channels, h, w], &mut rng);
    let wt = Tensor::randn(&spec.weight_dims(), &mut rng);
    let naive = conv2d_with(&x, &wt, spec, KernelPolicy::Naive).unwrap();
    let blocked = conv2d_with(&x, &wt, spec, KernelPolicy::Blocked).unwrap();
    assert_close(&naive, &blocked, "conv2d forward");

    let dy = Tensor::randn(naive.dims(), &mut rng);
    let ni = conv2d_grad_input_with(&dy, &wt, spec, (h, w), KernelPolicy::Naive).unwrap();
    let bi = conv2d_grad_input_with(&dy, &wt, spec, (h, w), KernelPolicy::Blocked).unwrap();
    assert_close(&ni, &bi, "conv2d grad input");

    let nw = conv2d_grad_weight_with(&x, &dy, spec, KernelPolicy::Naive).unwrap();
    let bw = conv2d_grad_weight_with(&x, &dy, spec, KernelPolicy::Blocked).unwrap();
    assert_close(&nw, &bw, "conv2d grad weight");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn conv_kernels_blocked_match_naive(
        gsel in 0usize..3,
        cim in 1usize..4,
        com in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        n in 1usize..3,
        h in 3usize..8,
        w in 3usize..8,
        seed in any::<u64>(),
    ) {
        // Non-square inputs arise whenever h != w; groups cover dense,
        // grouped, and depthwise convolutions.
        let spec = spec_from(gsel, cim, com, k, stride, padding);
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
        check_all(spec, n, h, w, seed);
    }

    #[test]
    fn strided_padded_depthwise_blocked_matches_naive(
        channels in 1usize..5,
        k in 1usize..4,
        stride in 1usize..4,
        h in 3usize..7,
        w in 3usize..7,
        seed in any::<u64>(),
    ) {
        // Dedicated depthwise coverage (groups == channels) with "same"
        // padding — the DS-Conv building block of the compression
        // workload.
        let spec = Conv2dSpec::depthwise(channels, k, stride, k / 2);
        check_all(spec, 2, h, w, seed);
    }

    #[test]
    fn matmul_family_blocked_matches_naive(
        m in 1usize..41,
        k in 1usize..41,
        n in 1usize..41,
        seed in any::<u64>(),
    ) {
        let mut rng = Rng64::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        assert_close(
            &a.matmul_with(&b, KernelPolicy::Naive).unwrap(),
            &a.matmul_with(&b, KernelPolicy::Blocked).unwrap(),
            "matmul",
        );

        let at = Tensor::randn(&[k, m], &mut rng);
        assert_close(
            &at.matmul_t_a_with(&b, KernelPolicy::Naive).unwrap(),
            &at.matmul_t_a_with(&b, KernelPolicy::Blocked).unwrap(),
            "matmul_t_a",
        );

        let bt = Tensor::randn(&[n, k], &mut rng);
        assert_close(
            &a.matmul_b_t_with(&bt, KernelPolicy::Naive).unwrap(),
            &a.matmul_b_t_with(&bt, KernelPolicy::Blocked).unwrap(),
            "matmul_b_t",
        );
    }
}
