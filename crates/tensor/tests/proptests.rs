//! Property-based tests for the tensor substrate.
//!
//! The adjoint identities here are the load-bearing invariants: every
//! backward kernel must satisfy `⟨F(x), y⟩ == ⟨x, Fᵀ(y)⟩` for its forward
//! kernel, which is what makes the distillation gradients (and hence the
//! Pipe-BD parity claims) trustworthy.

use pipebd_tensor::{
    avg_pool2d, avg_pool2d_backward, conv2d, conv2d_grad_input, conv2d_grad_weight, Conv2dSpec,
    Tensor,
};
use proptest::prelude::*;

fn vecf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

fn dot(a: &Tensor, b: &Tensor) -> f64 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_transpose_identity(a in vecf(6), b in vecf(6)) {
        // (A B)ᵀ == Bᵀ Aᵀ
        let a = Tensor::from_vec(a, &[2, 3]).unwrap();
        let b = Tensor::from_vec(b, &[3, 2]).unwrap();
        let left = a.matmul(&b).unwrap().transpose2d().unwrap();
        let right = b
            .transpose2d()
            .unwrap()
            .matmul(&a.transpose2d().unwrap())
            .unwrap();
        prop_assert!(left.allclose(&right, 1e-4).unwrap());
    }

    #[test]
    fn matmul_distributes_over_addition(a in vecf(6), b in vecf(6), c in vecf(6)) {
        // A (B + C) == A B + A C
        let a = Tensor::from_vec(a, &[2, 3]).unwrap();
        let b = Tensor::from_vec(b, &[3, 2]).unwrap();
        let c = Tensor::from_vec(c, &[3, 2]).unwrap();
        let left = a.matmul(&b.add(&c).unwrap()).unwrap();
        let right = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.allclose(&right, 1e-4).unwrap());
    }

    #[test]
    fn conv_grad_input_is_adjoint(x in vecf(2 * 36), y in vecf(3 * 36)) {
        // ⟨conv(x), y⟩ == ⟨x, conv_grad_input(y)⟩
        let spec = Conv2dSpec::dense(2, 3, 3, 1, 1);
        let x = Tensor::from_vec(x, &[1, 2, 6, 6]).unwrap();
        let y = Tensor::from_vec(y, &[1, 3, 6, 6]).unwrap();
        let mut rng = pipebd_tensor::Rng64::seed_from_u64(5);
        let w = Tensor::randn(&[3, 2, 3, 3], &mut rng);
        let fx = conv2d(&x, &w, spec).unwrap();
        let fty = conv2d_grad_input(&y, &w, spec, (6, 6)).unwrap();
        let lhs = dot(&fx, &y);
        let rhs = dot(&x, &fty);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_grad_weight_is_adjoint_in_w(w in vecf(3 * 2 * 9), y in vecf(3 * 36)) {
        // ⟨conv_w(x), y⟩ == ⟨w, grad_weight(x, y)⟩ (conv is linear in w).
        let spec = Conv2dSpec::dense(2, 3, 3, 1, 1);
        let mut rng = pipebd_tensor::Rng64::seed_from_u64(6);
        let x = Tensor::randn(&[1, 2, 6, 6], &mut rng);
        let w = Tensor::from_vec(w, &[3, 2, 3, 3]).unwrap();
        let y = Tensor::from_vec(y, &[1, 3, 6, 6]).unwrap();
        let fx = conv2d(&x, &w, spec).unwrap();
        let gw = conv2d_grad_weight(&x, &y, spec).unwrap();
        let lhs = dot(&fx, &y);
        let rhs = dot(&w, &gw);
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_is_linear_in_input(x1 in vecf(2 * 25), x2 in vecf(2 * 25)) {
        let spec = Conv2dSpec::dense(2, 2, 3, 1, 1);
        let mut rng = pipebd_tensor::Rng64::seed_from_u64(7);
        let w = Tensor::randn(&[2, 2, 3, 3], &mut rng);
        let x1 = Tensor::from_vec(x1, &[1, 2, 5, 5]).unwrap();
        let x2 = Tensor::from_vec(x2, &[1, 2, 5, 5]).unwrap();
        let sum = conv2d(&x1.add(&x2).unwrap(), &w, spec).unwrap();
        let parts = conv2d(&x1, &w, spec)
            .unwrap()
            .add(&conv2d(&x2, &w, spec).unwrap())
            .unwrap();
        prop_assert!(sum.allclose(&parts, 1e-3).unwrap());
    }

    #[test]
    fn avg_pool_is_adjoint(x in vecf(16), y in vecf(4)) {
        let x = Tensor::from_vec(x, &[1, 1, 4, 4]).unwrap();
        let y = Tensor::from_vec(y, &[1, 1, 2, 2]).unwrap();
        let fx = avg_pool2d(&x, 2, 2).unwrap();
        let fty = avg_pool2d_backward(&y, &[1, 1, 4, 4], 2, 2).unwrap();
        let lhs = dot(&fx, &y);
        let rhs = dot(&x, &fty);
        prop_assert!((lhs - rhs).abs() < 1e-4 * (1.0 + lhs.abs()));
    }

    #[test]
    fn split_cat_roundtrip(rows in 1usize..12, cols in 1usize..6, parts in 1usize..5) {
        prop_assume!(rows >= parts);
        let data: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
        let t = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let shards = t.split_batch(parts).unwrap();
        prop_assert_eq!(shards.len(), parts);
        let total: usize = shards.iter().map(|s| s.dims()[0]).sum();
        prop_assert_eq!(total, rows);
        let back = Tensor::cat_batch(&shards).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>(), stream in any::<u64>()) {
        let parent = pipebd_tensor::Rng64::seed_from_u64(seed);
        let mut a = parent.fork(stream);
        let mut b = parent.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn axpy_matches_scale_add(alpha in -2.0f32..2.0, a in vecf(8), b in vecf(8)) {
        let mut x = Tensor::from_vec(a.clone(), &[8]).unwrap();
        let y = Tensor::from_vec(b.clone(), &[8]).unwrap();
        x.axpy(alpha, &y).unwrap();
        let mut scaled = y.clone();
        scaled.scale(alpha);
        let expect = Tensor::from_vec(a, &[8]).unwrap().add(&scaled).unwrap();
        prop_assert!(x.allclose(&expect, 1e-5).unwrap());
    }
}
