//! The runtime-dispatch battery: every supported SIMD tier must compute
//! the same numbers, and misconfiguration must fail loudly.
//!
//! The blocked GEMM macrokernel is compiled three times (scalar, FMA,
//! AVX-512) and selected per call from one probed-at-startup tier (or a
//! `PIPEBD_SIMD` override). Every tier accumulates through single-
//! rounding `f32::mul_add`, so supported tiers are **bitwise** equal to
//! each other — asserted here, not just "close" — and match the naive
//! oracle within FMA-contraction tolerance.
//!
//! Tier forcing mutates process-global dispatch state, so everything
//! that switches tiers lives in ONE `#[test]` (tests in a binary run
//! concurrently); the pure resolution checks are separate.

use pipebd_tensor::{resolve_simd_override, set_simd_tier, simd_tier};
use pipebd_tensor::{KernelPolicy, Rng64, SimdTier, Tensor};

#[test]
fn every_supported_tier_matches_the_oracle_and_each_other() {
    let supported: Vec<SimdTier> = SimdTier::ALL
        .into_iter()
        .filter(|t| t.is_supported())
        .collect();
    // Scalar runs everywhere: one tier is always forceable, so this
    // test is never vacuous (and on an AVX-512 host it covers all 3).
    assert!(
        supported.contains(&SimdTier::Scalar),
        "scalar tier must be universally supported"
    );

    let mut rng = Rng64::seed_from_u64(2024);
    let shapes = [(1usize, 7usize, 1usize), (13, 5, 29), (64, 48, 96)];
    for (m, k, n) in shapes {
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let oracle = a.matmul_with(&b, KernelPolicy::Naive).unwrap();

        let mut per_tier: Vec<(SimdTier, Tensor)> = Vec::new();
        for &tier in &supported {
            set_simd_tier(tier).unwrap();
            assert_eq!(simd_tier(), tier, "forced tier must win");
            per_tier.push((tier, a.matmul_with(&b, KernelPolicy::Blocked).unwrap()));
        }

        // Tier vs naive oracle: same per-element summation order, so
        // only FMA contraction separates them.
        let scale = 1.0 + oracle.data().iter().fold(0.0f32, |s, v| s.max(v.abs()));
        for (tier, out) in &per_tier {
            let diff = oracle.max_abs_diff(out).unwrap();
            assert!(
                diff <= 1e-4 * scale,
                "{tier} vs naive oracle: diff {diff} at {m}x{k}x{n}"
            );
        }

        // Tier vs tier: bitwise, because every tier fma-contracts.
        let (base_tier, base) = &per_tier[0];
        for (tier, out) in &per_tier[1..] {
            assert_eq!(
                base.max_abs_diff(out).unwrap(),
                0.0,
                "{tier} differs from {base_tier} at {m}x{k}x{n}"
            );
        }
    }

    // Leave the process on the probed default for any later test.
    set_simd_tier(SimdTier::probe()).unwrap();
}

#[test]
fn unknown_override_is_a_loud_error() {
    // Deliberately unlike PIPEBD_KERNEL_POLICY's warn-and-fall-back: a
    // typo'd PIPEBD_SIMD must never silently benchmark the wrong tier.
    let err = resolve_simd_override(Some("avx1024")).unwrap_err();
    assert!(
        err.contains("avx1024"),
        "error must name the bad value: {err}"
    );
    assert!(resolve_simd_override(Some("")).is_err());
    assert!(resolve_simd_override(Some("native")).is_err());
}

#[test]
fn auto_and_absent_override_resolve_to_the_probe() {
    assert_eq!(resolve_simd_override(None).unwrap(), SimdTier::probe());
    assert_eq!(
        resolve_simd_override(Some("auto")).unwrap(),
        SimdTier::probe()
    );
    // The probe's answer is itself supported and runnable.
    assert!(SimdTier::probe().is_supported());
}

#[test]
fn unsupported_tier_is_rejected_not_downgraded() {
    // On hosts missing a tier, both the resolver and the setter must
    // refuse it (never fall back); on hosts that have everything, the
    // property is vacuous here and the resolver tests still pin the
    // unknown-name path.
    for tier in SimdTier::ALL {
        if !tier.is_supported() {
            assert!(set_simd_tier(tier).is_err(), "{tier} setter must refuse");
            assert!(
                resolve_simd_override(Some(&tier.to_string())).is_err(),
                "{tier} resolver must refuse"
            );
        }
    }
}
