//! The parallel determinism battery: pooled blocked kernels must be
//! **bitwise identical** to their serial runs.
//!
//! The parallel compute plane's contract (see `pipebd_tensor::parallel`)
//! is that every decomposition partitions the *output*, each element is
//! produced whole by one task running the unchanged serial kernel, and
//! no partial sums ever cross workers — so pool size must not change a
//! single bit. These properties sample GEMM shapes and convolution
//! geometries (strides, paddings, dense/grouped/depthwise, non-square
//! inputs) and compare every kernel under pools of {2, 4} lanes against
//! the pinned-serial run (an installed size-1 pool). Equality is exact:
//! `max_abs_diff == 0`, not a tolerance.

use pipebd_tensor::parallel::{install, ComputePool};
use pipebd_tensor::{
    conv2d_grad_input_with, conv2d_grad_weight_with, conv2d_with, Conv2dSpec, KernelPolicy, Rng64,
    Tensor,
};
use proptest::prelude::*;

/// Runs `f` serially, then under each pooled width, and asserts the
/// pooled results are bit-identical to the serial one.
fn assert_pool_invariant(what: &str, f: impl Fn() -> Tensor) {
    let serial = install(&ComputePool::new(1), &f);
    for width in [2usize, 4] {
        let pooled = install(&ComputePool::new(width), &f);
        let diff = serial.max_abs_diff(&pooled).unwrap();
        assert!(
            diff == 0.0,
            "{what}: pool size {width} diverged from serial by {diff}"
        );
    }
}

/// Samples a spec covering dense, grouped, and depthwise convolutions.
fn spec_from(
    gsel: usize,
    cim: usize,
    com: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Conv2dSpec {
    let groups = match gsel {
        0 => 1,
        1 => 2,
        _ => 2 * cim,
    };
    let (in_channels, out_channels) = if gsel == 2 {
        (2 * cim, 2 * cim)
    } else {
        (groups * cim, groups * com)
    };
    Conv2dSpec {
        in_channels,
        out_channels,
        kernel: k,
        stride,
        padding,
        groups,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn parallel_gemm_is_bitwise_serial(
        m in 1usize..80,
        k in 1usize..48,
        n in 1usize..80,
        seed in any::<u64>(),
    ) {
        // Shapes straddle the row-band (MR=8) and column-band (NR=32)
        // split thresholds, so small cases exercise the serial fallback
        // and large ones both parallel decompositions.
        let mut rng = Rng64::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        assert_pool_invariant("matmul", || {
            a.matmul_with(&b, KernelPolicy::Blocked).unwrap()
        });

        // The transposed-operand entries drive the column-band path
        // (tall outputs with few rows) and the accumulate path inside
        // the adjoint kernels.
        let at = Tensor::randn(&[k, m], &mut rng);
        assert_pool_invariant("matmul_t_a", || {
            at.matmul_t_a_with(&b, KernelPolicy::Blocked).unwrap()
        });
        let bt = Tensor::randn(&[n, k], &mut rng);
        assert_pool_invariant("matmul_b_t", || {
            a.matmul_b_t_with(&bt, KernelPolicy::Blocked).unwrap()
        });
    }

    #[test]
    fn parallel_conv_family_is_bitwise_serial(
        gsel in 0usize..3,
        cim in 1usize..4,
        com in 1usize..4,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..3,
        n in 1usize..3,
        h in 3usize..8,
        w in 3usize..8,
        seed in any::<u64>(),
    ) {
        let spec = spec_from(gsel, cim, com, k, stride, padding);
        prop_assume!(h + 2 * padding >= k && w + 2 * padding >= k);
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Tensor::randn(&[n, spec.in_channels, h, w], &mut rng);
        let wt = Tensor::randn(&spec.weight_dims(), &mut rng);
        let y = assert_pool_invariant_ret("conv2d forward", || {
            conv2d_with(&x, &wt, spec, KernelPolicy::Blocked).unwrap()
        });

        let dy = Tensor::randn(y.dims(), &mut rng);
        assert_pool_invariant("conv2d grad input", || {
            conv2d_grad_input_with(&dy, &wt, spec, (h, w), KernelPolicy::Blocked).unwrap()
        });
        assert_pool_invariant("conv2d grad weight", || {
            conv2d_grad_weight_with(&x, &dy, spec, KernelPolicy::Blocked).unwrap()
        });
    }

    #[test]
    fn parallel_depthwise_is_bitwise_serial(
        channels in 1usize..5,
        k in 1usize..4,
        stride in 1usize..4,
        h in 3usize..7,
        w in 3usize..7,
        seed in any::<u64>(),
    ) {
        // Depthwise convs (groups == channels) split over the most
        // (batch, group) units per output element — the decomposition
        // with the highest task count relative to work.
        let spec = Conv2dSpec::depthwise(channels, k, stride, k / 2);
        let mut rng = Rng64::seed_from_u64(seed);
        let x = Tensor::randn(&[2, spec.in_channels, h, w], &mut rng);
        let wt = Tensor::randn(&spec.weight_dims(), &mut rng);
        let y = assert_pool_invariant_ret("depthwise forward", || {
            conv2d_with(&x, &wt, spec, KernelPolicy::Blocked).unwrap()
        });
        let dy = Tensor::randn(y.dims(), &mut rng);
        assert_pool_invariant("depthwise grad input", || {
            conv2d_grad_input_with(&dy, &wt, spec, (h, w), KernelPolicy::Blocked).unwrap()
        });
        assert_pool_invariant("depthwise grad weight", || {
            conv2d_grad_weight_with(&x, &dy, spec, KernelPolicy::Blocked).unwrap()
        });
    }
}

/// [`assert_pool_invariant`], returning the serial result for reuse.
fn assert_pool_invariant_ret(what: &str, f: impl Fn() -> Tensor) -> Tensor {
    let serial = install(&ComputePool::new(1), &f);
    for width in [2usize, 4] {
        let pooled = install(&ComputePool::new(width), &f);
        let diff = serial.max_abs_diff(&pooled).unwrap();
        assert!(
            diff == 0.0,
            "{what}: pool size {width} diverged from serial by {diff}"
        );
    }
    serial
}

#[test]
fn repeated_pooled_runs_are_bit_stable() {
    // Determinism across *runs* at a fixed pool size: stealing order is
    // nondeterministic, results must not be.
    let mut rng = Rng64::seed_from_u64(99);
    let a = Tensor::randn(&[64, 32], &mut rng);
    let b = Tensor::randn(&[32, 64], &mut rng);
    let pool = ComputePool::new(4);
    let first = install(&pool, || a.matmul_with(&b, KernelPolicy::Blocked).unwrap());
    for _ in 0..10 {
        let again = install(&pool, || a.matmul_with(&b, KernelPolicy::Blocked).unwrap());
        assert_eq!(first.max_abs_diff(&again).unwrap(), 0.0);
    }
}
