//! The on-disk store: save/load/list/compare of schema-tagged envelopes.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use pipebd_json::{Number, Value};

use crate::ArtifactPayload;

/// Error raised by [`ArtifactStore`] operations.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(io::Error),
    /// JSON syntax or data-model failure.
    Json(pipebd_json::Error),
    /// The envelope's schema tag does not match the requested payload.
    Schema {
        /// Schema found in the file.
        found: String,
        /// Schema the payload type expects.
        expected: &'static str,
    },
    /// The envelope's version does not match the payload's.
    Version {
        /// Version found in the file.
        found: u64,
        /// Version the payload type expects.
        expected: u32,
    },
    /// The file is not a well-formed artifact envelope.
    Malformed(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact I/O error: {e}"),
            ArtifactError::Json(e) => write!(f, "artifact JSON error: {e}"),
            ArtifactError::Schema { found, expected } => {
                write!(
                    f,
                    "artifact schema mismatch: found `{found}`, expected `{expected}`"
                )
            }
            ArtifactError::Version { found, expected } => {
                write!(
                    f,
                    "artifact version mismatch: found {found}, expected {expected}"
                )
            }
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact envelope: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            ArtifactError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

impl From<pipebd_json::Error> for ArtifactError {
    fn from(e: pipebd_json::Error) -> Self {
        ArtifactError::Json(e)
    }
}

/// Envelope metadata (everything but the payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Schema identifier.
    pub schema: String,
    /// Schema version.
    pub version: u64,
    /// Artifact name (the file stem).
    pub name: String,
    /// Creation time, seconds since the Unix epoch.
    pub created_unix_s: u64,
}

/// A directory of schema-tagged JSON artifacts.
#[derive(Debug, Clone)]
pub struct ArtifactStore {
    root: PathBuf,
}

impl ArtifactStore {
    /// Opens a store rooted at `root` (created lazily on first save).
    pub fn at(root: impl Into<PathBuf>) -> Self {
        ArtifactStore { root: root.into() }
    }

    /// Opens the default store: `$PIPEBD_ARTIFACT_DIR` if set, else the
    /// workspace's `target/artifacts`. The fallback is anchored at the
    /// workspace root via this crate's compile-time manifest path, so
    /// bins (`cargo run`, cwd = invocation dir) and tests/benches
    /// (cwd = package dir) agree on one store.
    pub fn from_env() -> Self {
        if let Some(dir) = std::env::var_os("PIPEBD_ARTIFACT_DIR") {
            return ArtifactStore { root: dir.into() };
        }
        let workspace_root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap_or_else(|| Path::new("."));
        ArtifactStore {
            root: workspace_root.join("target").join("artifacts"),
        }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path an artifact name maps to.
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.json"))
    }

    /// Persists `payload` as `<root>/<name>.json`, returning the path.
    ///
    /// The envelope is pretty-printed (artifacts are meant to be diffed
    /// and read in review) and ends with a newline.
    ///
    /// The write is **atomic**: the envelope lands in a `.tmp` sibling
    /// first and is renamed over the target, so a crash mid-save can
    /// never leave a torn artifact — readers see the old envelope or the
    /// new one, nothing in between. Transient filesystem errors
    /// (interrupts and friends) are retried with a short backoff.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on filesystem failures, [`ArtifactError::Json`]
    /// if the payload fails to serialize.
    pub fn save<T: ArtifactPayload>(
        &self,
        name: &str,
        payload: &T,
    ) -> Result<PathBuf, ArtifactError> {
        let payload_value = pipebd_json::to_value(payload)?;
        let envelope = Value::Object(vec![
            ("schema".into(), Value::String(T::SCHEMA.into())),
            (
                "version".into(),
                Value::Number(Number::PosInt(u64::from(T::VERSION))),
            ),
            ("name".into(), Value::String(name.into())),
            (
                "created_unix_s".into(),
                Value::Number(Number::PosInt(unix_now_s())),
            ),
            ("payload".into(), payload_value),
        ]);
        let mut text = pipebd_json::to_string_pretty(&envelope)?;
        text.push('\n');
        let path = self.path_of(name);
        let tmp = self.root.join(format!("{name}.json.tmp"));
        retrying(|| {
            fs::create_dir_all(&self.root)?;
            fs::write(&tmp, &text)?;
            fs::rename(&tmp, &path)
        })?;
        Ok(path)
    }

    /// Loads and validates the artifact `name` as payload type `T`.
    ///
    /// # Errors
    ///
    /// I/O and JSON errors as in [`ArtifactStore::save`], plus
    /// [`ArtifactError::Schema`] / [`ArtifactError::Version`] when the
    /// envelope tags do not match `T`, and [`ArtifactError::Malformed`]
    /// when envelope fields are missing.
    pub fn load<T: ArtifactPayload>(&self, name: &str) -> Result<T, ArtifactError> {
        let (_, payload) = self.load_with_meta(name)?;
        Ok(payload)
    }

    /// Loads an artifact together with its envelope metadata.
    ///
    /// # Errors
    ///
    /// Same as [`ArtifactStore::load`].
    pub fn load_with_meta<T: ArtifactPayload>(
        &self,
        name: &str,
    ) -> Result<(ArtifactMeta, T), ArtifactError> {
        let (meta, payload_value) = self.load_raw(name)?;
        if meta.schema != T::SCHEMA {
            return Err(ArtifactError::Schema {
                found: meta.schema,
                expected: T::SCHEMA,
            });
        }
        if meta.version != u64::from(T::VERSION) {
            return Err(ArtifactError::Version {
                found: meta.version,
                expected: T::VERSION,
            });
        }
        let payload = pipebd_json::from_value(&payload_value)?;
        Ok((meta, payload))
    }

    /// Loads an artifact's metadata and untyped payload tree without
    /// schema validation (the `artifact_smoke` lane uses this to audit
    /// whatever is on disk).
    ///
    /// # Errors
    ///
    /// I/O, JSON, and [`ArtifactError::Malformed`] errors.
    pub fn load_raw(&self, name: &str) -> Result<(ArtifactMeta, Value), ArtifactError> {
        let path = self.path_of(name);
        let text = retrying(|| fs::read_to_string(&path))?;
        let envelope = pipebd_json::parse(&text)?;
        let Value::Object(mut entries) = envelope else {
            return Err(ArtifactError::Malformed("envelope is not an object".into()));
        };
        let field = |entries: &[(String, Value)], key: &str| {
            entries
                .iter()
                .position(|(k, _)| k == key)
                .ok_or_else(|| ArtifactError::Malformed(format!("missing `{key}` field")))
        };
        let schema = entries[field(&entries, "schema")?]
            .1
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("`schema` is not a string".into()))?
            .to_owned();
        let version = entries[field(&entries, "version")?]
            .1
            .as_u64()
            .ok_or_else(|| ArtifactError::Malformed("`version` is not an integer".into()))?;
        let stored_name = entries[field(&entries, "name")?]
            .1
            .as_str()
            .ok_or_else(|| ArtifactError::Malformed("`name` is not a string".into()))?
            .to_owned();
        let created_unix_s = entries[field(&entries, "created_unix_s")?]
            .1
            .as_u64()
            .ok_or_else(|| ArtifactError::Malformed("`created_unix_s` is not an integer".into()))?;
        // Take the payload by value — run sets hold dozens of reports, and
        // a typed load should not deep-clone the whole subtree.
        let payload_idx = field(&entries, "payload")?;
        let payload = entries.swap_remove(payload_idx).1;
        Ok((
            ArtifactMeta {
                schema,
                version,
                name: stored_name,
                created_unix_s,
            },
            payload,
        ))
    }

    /// Names of all artifacts in the store, sorted. An absent root
    /// directory lists as empty.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] on directory read failures.
    pub fn list(&self) -> Result<Vec<String>, ArtifactError> {
        let mut names = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(names),
            Err(e) => return Err(e.into()),
        };
        for entry in entries {
            let path = entry?.path();
            if path.extension().is_some_and(|ext| ext == "json") {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    names.push(stem.to_owned());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Compares a stored artifact's payload against `current`: `Ok(true)`
    /// when the persisted JSON tree equals the tree `current` serializes
    /// to (schema and version must match too). The comparison is at the
    /// JSON level, so it is exactly the round-trip equality the tests pin.
    ///
    /// # Errors
    ///
    /// Same as [`ArtifactStore::load`]; a missing file is an error, not a
    /// mismatch.
    pub fn matches<T: ArtifactPayload>(
        &self,
        name: &str,
        current: &T,
    ) -> Result<bool, ArtifactError> {
        let (meta, stored) = self.load_raw(name)?;
        if meta.schema != T::SCHEMA || meta.version != u64::from(T::VERSION) {
            return Ok(false);
        }
        Ok(stored == pipebd_json::to_value(current)?)
    }
}

fn unix_now_s() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// Attempts before [`retrying`] gives up and surfaces the error.
const IO_ATTEMPTS: u32 = 3;

/// Backoff slept after attempt `n` (scaled by `n`; deterministic).
const IO_BACKOFF: std::time::Duration = std::time::Duration::from_millis(2);

/// Runs a filesystem operation, retrying transient failures.
///
/// Interrupted syscalls and spurious sharing/timeout conditions get
/// [`IO_ATTEMPTS`] tries with a short linear backoff; deterministic
/// failures (missing file, permissions, full disk) surface immediately —
/// retrying those only delays the caller's error handling.
fn retrying<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < IO_ATTEMPTS && transient(&e) => {
                std::thread::sleep(IO_BACKOFF * attempt);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Whether an I/O error is worth retrying.
fn transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}
