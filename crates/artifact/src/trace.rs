//! Trace-plane artifacts: persisted executor observations and the
//! regression gate's machine-readable verdict.
//!
//! A [`TraceArtifact`] freezes what one instrumented run *measured* — the
//! per-stage busy/bubble summary, the metrics registry snapshot, and
//! (when the run was differentialed) the measured-vs-predicted verdict —
//! so bubble-ratio trends can be compared across commits without re-running
//! anything. A [`GateReport`] is the regression gate's sweep verdict in the
//! same envelope format, for CI to archive and diff.

use pipebd_trace::{MetricsSnapshot, TraceDifferential, TraceSummary};
use serde::{Deserialize, Serialize};

use crate::ArtifactPayload;

/// One instrumented run's persisted observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceArtifact {
    /// Scenario or run label (e.g. `"trace/tr_dpu_r4"`).
    pub scenario: String,
    /// Trace mode the run executed under (`"spans"` or `"full"`).
    pub mode: String,
    /// Compute lanes the host offered (`min(parallelism, ranks)`); period
    /// predictions are only comparable between equal-lane runs.
    pub lanes: usize,
    /// The measured timeline summary.
    pub summary: TraceSummary,
    /// Counters/gauges/histograms snapshotted at drain (empty unless the
    /// run traced in full mode).
    pub metrics: MetricsSnapshot,
    /// Measured-vs-predicted verdict, when the differential ran.
    pub differential: Option<TraceDifferential>,
}

impl ArtifactPayload for TraceArtifact {
    const SCHEMA: &'static str = "pipebd.trace";
    const VERSION: u32 = 1;
}

/// One named check inside a [`GateReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateCheck {
    /// Check name (e.g. `"bench_e2e"`, `"recovery_honest"`).
    pub name: String,
    /// Whether the check passed.
    pub pass: bool,
    /// One-line human detail (counts, worst ratio, skip reason).
    pub detail: String,
}

/// The regression gate's sweep verdict, persisted for CI archaeology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GateReport {
    /// Overall verdict (`false` when any fatal check failed).
    pub pass: bool,
    /// Machine fingerprint the gate ran on (nanosecond tolerances are
    /// only *enforced* against a matching baseline).
    pub fingerprint: String,
    /// Every check the gate ran, in execution order.
    pub checks: Vec<GateCheck>,
    /// Whole-run bubble ratio of the gate's traced scenario, when the
    /// trace hook ran — the trend the gate tracks non-fatally across
    /// commits.
    pub bubble_ratio: Option<f64>,
}

impl ArtifactPayload for GateReport {
    const SCHEMA: &'static str = "pipebd.gate_report";
    const VERSION: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArtifactStore;
    use pipebd_trace::StageObservation;

    fn sample_summary() -> TraceSummary {
        TraceSummary {
            steps: 12,
            tail: 4,
            wall_ns: 4_000_000,
            measured_period_ns: 310_000,
            total_busy_ns: 3_100_000,
            stages: vec![
                StageObservation {
                    stage: 0,
                    width: 1,
                    busy_ns: 1_900_000,
                    busy_ratio: 0.475,
                    bubble_ratio: 0.525,
                },
                StageObservation {
                    stage: 1,
                    width: 2,
                    busy_ns: 600_000,
                    busy_ratio: 0.15,
                    bubble_ratio: 0.85,
                },
            ],
            bottleneck_stage: 0,
            bottleneck_margin: 3.1666,
            bubble_ratio: 0.7416,
            spans: 144,
            dropped: 0,
        }
    }

    #[test]
    fn trace_artifact_round_trips_through_the_store() {
        let dir = std::env::temp_dir().join(format!("pipebd_trace_art_{}", std::process::id()));
        let store = ArtifactStore::at(&dir);
        let art = TraceArtifact {
            scenario: "trace/tr_dpu_r4".into(),
            mode: "full".into(),
            lanes: 1,
            summary: sample_summary(),
            metrics: MetricsSnapshot::default(),
            differential: None,
        };
        store.save("TRACE_test", &art).unwrap();
        let (meta, loaded) = store.load_with_meta::<TraceArtifact>("TRACE_test").unwrap();
        assert_eq!(loaded, art);
        assert_eq!(meta.schema, "pipebd.trace");
        assert_eq!(meta.version, 1);
        assert!(store.matches("TRACE_test", &art).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_report_round_trips_through_the_store() {
        let dir = std::env::temp_dir().join(format!("pipebd_gate_art_{}", std::process::id()));
        let store = ArtifactStore::at(&dir);
        let report = GateReport {
            pass: true,
            fingerprint: "m1 pool1".into(),
            checks: vec![GateCheck {
                name: "bench_e2e".into(),
                pass: true,
                detail: "12 ids within budget".into(),
            }],
            bubble_ratio: Some(0.74),
        };
        store.save("GATE_test", &report).unwrap();
        let loaded = store.load::<GateReport>("GATE_test").unwrap();
        assert_eq!(loaded, report);
        std::fs::remove_dir_all(&dir).ok();
    }
}
