//! Artifact payload types beyond the core report/plan structs: figure run
//! sets, profiled cost tables, and bench baselines.

use pipebd_core::RunReport;
use pipebd_models::BlockModel;
use pipebd_sched::ProfileTable;
use pipebd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::ArtifactPayload;

/// The reports produced by one figure/table reproducer binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSet {
    /// Which figure or table this reproduces (e.g. `"fig2_motivation"`).
    pub figure: String,
    /// One-line description of the sweep.
    pub description: String,
    /// All reports of the sweep, in the order the binary produced them.
    pub reports: Vec<RunReport>,
}

impl ArtifactPayload for RunSet {
    const SCHEMA: &'static str = "pipebd.run_set";
    const VERSION: u32 = 1;
}

/// Profiled cost of one block at every profiled batch size, in integer
/// nanoseconds (exact round-trip; the profile is the scheduler's input and
/// must not drift through float text).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Block name (e.g. `"b2"`).
    pub name: String,
    /// Teacher forward time per batch size, aligned with
    /// [`CostProfile::batch_sizes`].
    pub teacher_ns: Vec<u64>,
    /// Student forward+backward time per batch size.
    pub student_ns: Vec<u64>,
    /// Optimizer update time (batch-independent).
    pub update_ns: u64,
}

/// A persisted profiling pass: everything the AHD search needs to replay a
/// schedule decision from measured (here: modeled) times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Workload label the profile was taken on.
    pub workload: String,
    /// GPU the cost model stood in for.
    pub gpu: String,
    /// Global batch size the feasible per-device batches derive from.
    pub global_batch: usize,
    /// Device count the feasible per-device batches derive from.
    pub num_devices: usize,
    /// Profiled per-device batch sizes, ascending.
    pub batch_sizes: Vec<usize>,
    /// Per-block cost rows, in block order.
    pub blocks: Vec<BlockCost>,
}

impl ArtifactPayload for CostProfile {
    const SCHEMA: &'static str = "pipebd.cost_profile";
    const VERSION: u32 = 1;
}

impl CostProfile {
    /// Captures a [`ProfileTable`] (plus the context it was profiled in)
    /// for persistence.
    ///
    /// # Panics
    ///
    /// Panics if `table` was not profiled over `model`'s blocks (length
    /// mismatch).
    pub fn from_table(
        workload: impl Into<String>,
        gpu: impl Into<String>,
        global_batch: usize,
        num_devices: usize,
        model: &BlockModel,
        table: &ProfileTable,
    ) -> Self {
        assert_eq!(
            model.num_blocks(),
            table.num_blocks(),
            "profile table does not cover the model's blocks"
        );
        let to_ns = |row: &[SimTime]| row.iter().map(SimTime::as_ns).collect::<Vec<u64>>();
        let blocks = model
            .blocks
            .iter()
            .enumerate()
            .map(|(i, desc)| BlockCost {
                name: desc.name.clone(),
                teacher_ns: to_ns(&table.teacher_rows()[i]),
                student_ns: to_ns(&table.student_rows()[i]),
                update_ns: table.update_time(i).as_ns(),
            })
            .collect();
        CostProfile {
            workload: workload.into(),
            gpu: gpu.into(),
            global_batch,
            num_devices,
            batch_sizes: table.batch_sizes().to_vec(),
            blocks,
        }
    }

    /// Rebuilds the [`ProfileTable`] the scheduler consumes.
    ///
    /// # Errors
    ///
    /// Returns a message when the persisted rows are not rectangular over
    /// [`CostProfile::batch_sizes`].
    pub fn to_table(&self) -> Result<ProfileTable, String> {
        let from_ns = |row: &[u64]| row.iter().copied().map(SimTime::from_ns).collect();
        let teacher = self.blocks.iter().map(|b| from_ns(&b.teacher_ns)).collect();
        let student = self.blocks.iter().map(|b| from_ns(&b.student_ns)).collect();
        let update = self
            .blocks
            .iter()
            .map(|b| SimTime::from_ns(b.update_ns))
            .collect();
        ProfileTable::from_parts(self.batch_sizes.clone(), teacher, student, update)
    }
}

/// One naive-vs-blocked kernel comparison from the `kernel_smoke` gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelComparison {
    /// Kernel case name (e.g. `"conv2d_8x16x16"`).
    pub kernel: String,
    /// Best-of-N mean time of the naive oracle, nanoseconds.
    pub naive_ns: u64,
    /// Best-of-N mean time of the blocked path, nanoseconds.
    pub blocked_ns: u64,
    /// `naive_ns / blocked_ns`.
    pub speedup: f64,
}

/// The kernel-smoke baseline (`BENCH_kernels.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchKernels {
    /// Active process-global kernel policy when the gate ran.
    pub kernel_policy: String,
    /// All compared kernels.
    pub cases: Vec<KernelComparison>,
}

impl ArtifactPayload for BenchKernels {
    const SCHEMA: &'static str = "pipebd.bench_kernels";
    const VERSION: u32 = 1;
}

/// One timed benchmark from a criterion-shim run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id (e.g. `"exec/threaded_mini_4dev_6steps"`).
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: u64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

/// A persisted bench run (`BENCH_e2e.json` from the micro bench).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSuite {
    /// Suite name (the bench target).
    pub suite: String,
    /// Active process-global kernel policy during the run.
    pub kernel_policy: String,
    /// All measurements, in execution order.
    pub records: Vec<BenchRecord>,
}

impl ArtifactPayload for BenchSuite {
    const SCHEMA: &'static str = "pipebd.bench_suite";
    const VERSION: u32 = 1;
}

impl BenchSuite {
    /// Summarizes drift against a baseline suite: `(id, baseline_ns,
    /// current_ns)` for every id present in both.
    pub fn compare(&self, baseline: &BenchSuite) -> Vec<(String, u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| {
                baseline
                    .records
                    .iter()
                    .find(|b| b.id == r.id)
                    .map(|b| (r.id.clone(), b.mean_ns, r.mean_ns))
            })
            .collect()
    }
}
