//! Artifact payload types beyond the core report/plan structs: figure run
//! sets, profiled cost tables, and bench baselines.

use pipebd_core::RunReport;
use pipebd_models::BlockModel;
use pipebd_sched::ProfileTable;
use pipebd_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::ArtifactPayload;

/// The reports produced by one figure/table reproducer binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSet {
    /// Which figure or table this reproduces (e.g. `"fig2_motivation"`).
    pub figure: String,
    /// One-line description of the sweep.
    pub description: String,
    /// All reports of the sweep, in the order the binary produced them.
    pub reports: Vec<RunReport>,
}

impl ArtifactPayload for RunSet {
    const SCHEMA: &'static str = "pipebd.run_set";
    const VERSION: u32 = 1;
}

/// Profiled cost of one block at every profiled batch size, in integer
/// nanoseconds (exact round-trip; the profile is the scheduler's input and
/// must not drift through float text).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCost {
    /// Block name (e.g. `"b2"`).
    pub name: String,
    /// Teacher forward time per batch size, aligned with
    /// [`CostProfile::batch_sizes`].
    pub teacher_ns: Vec<u64>,
    /// Student forward+backward time per batch size.
    pub student_ns: Vec<u64>,
    /// Optimizer update time (batch-independent).
    pub update_ns: u64,
}

/// A persisted profiling pass: everything the AHD search needs to replay a
/// schedule decision from measured (here: modeled) times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostProfile {
    /// Workload label the profile was taken on.
    pub workload: String,
    /// GPU the cost model stood in for.
    pub gpu: String,
    /// Global batch size the feasible per-device batches derive from.
    pub global_batch: usize,
    /// Device count the feasible per-device batches derive from.
    pub num_devices: usize,
    /// Profiled per-device batch sizes, ascending.
    pub batch_sizes: Vec<usize>,
    /// Per-block cost rows, in block order.
    pub blocks: Vec<BlockCost>,
}

impl ArtifactPayload for CostProfile {
    const SCHEMA: &'static str = "pipebd.cost_profile";
    const VERSION: u32 = 1;
}

impl CostProfile {
    /// Captures a [`ProfileTable`] (plus the context it was profiled in)
    /// for persistence.
    ///
    /// # Panics
    ///
    /// Panics if `table` was not profiled over `model`'s blocks (length
    /// mismatch).
    pub fn from_table(
        workload: impl Into<String>,
        gpu: impl Into<String>,
        global_batch: usize,
        num_devices: usize,
        model: &BlockModel,
        table: &ProfileTable,
    ) -> Self {
        assert_eq!(
            model.num_blocks(),
            table.num_blocks(),
            "profile table does not cover the model's blocks"
        );
        let to_ns = |row: &[SimTime]| row.iter().map(SimTime::as_ns).collect::<Vec<u64>>();
        let blocks = model
            .blocks
            .iter()
            .enumerate()
            .map(|(i, desc)| BlockCost {
                name: desc.name.clone(),
                teacher_ns: to_ns(&table.teacher_rows()[i]),
                student_ns: to_ns(&table.student_rows()[i]),
                update_ns: table.update_time(i).as_ns(),
            })
            .collect();
        CostProfile {
            workload: workload.into(),
            gpu: gpu.into(),
            global_batch,
            num_devices,
            batch_sizes: table.batch_sizes().to_vec(),
            blocks,
        }
    }

    /// Rebuilds the [`ProfileTable`] the scheduler consumes.
    ///
    /// # Errors
    ///
    /// Returns a message when the persisted rows are not rectangular over
    /// [`CostProfile::batch_sizes`].
    pub fn to_table(&self) -> Result<ProfileTable, String> {
        let from_ns = |row: &[u64]| row.iter().copied().map(SimTime::from_ns).collect();
        let teacher = self.blocks.iter().map(|b| from_ns(&b.teacher_ns)).collect();
        let student = self.blocks.iter().map(|b| from_ns(&b.student_ns)).collect();
        let update = self
            .blocks
            .iter()
            .map(|b| SimTime::from_ns(b.update_ns))
            .collect();
        ProfileTable::from_parts(self.batch_sizes.clone(), teacher, student, update)
    }
}

/// One naive-vs-blocked kernel comparison from the `kernel_smoke` gate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelComparison {
    /// Kernel case name (e.g. `"conv2d_8x16x16"`).
    pub kernel: String,
    /// Best-of-N mean time of the naive oracle, nanoseconds.
    pub naive_ns: u64,
    /// Best-of-N mean time of the blocked path, nanoseconds.
    pub blocked_ns: u64,
    /// `naive_ns / blocked_ns`.
    pub speedup: f64,
}

/// One measured point of a thread-scaling curve: the blocked path timed
/// under an installed compute pool of `pool` lanes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Installed pool width (1 pins the serial path).
    pub pool: usize,
    /// Best-of-N mean time per call, nanoseconds.
    pub mean_ns: u64,
}

/// The thread-scaling curve of one kernel: the same blocked call timed
/// under pools of increasing width. On multi-core hosts the curve slopes
/// down; on a 1-vCPU runner it is flat (the points record pool *overhead*,
/// not speedup) — either shape is a baseline worth holding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingCurve {
    /// Kernel case name (matches a [`KernelComparison::kernel`]).
    pub kernel: String,
    /// Measured points, ascending by pool width.
    pub points: Vec<ScalingPoint>,
}

/// The kernel-smoke baseline (`BENCH_kernels.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchKernels {
    /// Active process-global kernel policy when the gate ran.
    pub kernel_policy: String,
    /// Fingerprint of the run (see [`pooled_fingerprint`]); cross-machine
    /// comparisons are informational only.
    pub fingerprint: String,
    /// All compared kernels.
    pub cases: Vec<KernelComparison>,
    /// Thread-scaling curves for the pool-parallel kernels.
    pub scaling: Vec<ScalingCurve>,
}

impl ArtifactPayload for BenchKernels {
    const SCHEMA: &'static str = "pipebd.bench_kernels";
    // v2: added `fingerprint` (the regression gate's escape hatch).
    // v3: added `scaling`; the fingerprint now carries the pool budget.
    const VERSION: u32 = 3;
}

/// Drift of one kernel's blocked-vs-naive speedup against a baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedupDelta {
    /// Kernel case name.
    pub kernel: String,
    /// Baseline speedup (naive / blocked).
    pub baseline: f64,
    /// Current speedup.
    pub current: f64,
    /// Whether the current speedup collapsed below
    /// `baseline × min_retained` (a compute-plane regression).
    pub regressed: bool,
}

impl BenchKernels {
    /// Compares kernel speedups against a baseline run: a kernel regresses
    /// when its speedup drops below `baseline × min_retained` (speedups are
    /// timing *ratios*, so they transfer across machines far better than
    /// raw nanoseconds). Kernels absent from either side are skipped.
    pub fn compare_speedups(
        &self,
        baseline: &BenchKernels,
        min_retained: f64,
    ) -> Vec<SpeedupDelta> {
        self.cases
            .iter()
            .filter_map(|c| {
                baseline
                    .cases
                    .iter()
                    .find(|b| b.kernel == c.kernel)
                    .map(|b| SpeedupDelta {
                        kernel: c.kernel.clone(),
                        baseline: b.speedup,
                        current: c.speedup,
                        regressed: c.speedup < b.speedup * min_retained,
                    })
            })
            .collect()
    }

    /// Compares thread-scaling curves point-by-point against a baseline
    /// run: one [`ScalingDelta`] per `(kernel, pool)` pair present in
    /// both. Scaling points are raw nanoseconds at a specific pool width,
    /// so callers should only treat regressions as fatal when the
    /// (pool-aware) fingerprints match — a different host or pool budget
    /// legitimately reshapes the whole curve.
    pub fn compare_scaling(
        &self,
        baseline: &BenchKernels,
        tol: &BenchTolerance,
    ) -> Vec<ScalingDelta> {
        let mut deltas = Vec::new();
        for curve in &self.scaling {
            let Some(base_curve) = baseline.scaling.iter().find(|b| b.kernel == curve.kernel)
            else {
                continue;
            };
            for p in &curve.points {
                let Some(b) = base_curve.points.iter().find(|b| b.pool == p.pool) else {
                    continue;
                };
                let id = format!("scaling/{}/p{}", curve.kernel, p.pool);
                let ratio = if b.mean_ns == 0 {
                    f64::INFINITY
                } else {
                    p.mean_ns as f64 / b.mean_ns as f64
                };
                deltas.push(ScalingDelta {
                    regressed: tol.regresses(&id, b.mean_ns, p.mean_ns),
                    max_ratio: tol.max_ratio(&id),
                    kernel: curve.kernel.clone(),
                    pool: p.pool,
                    baseline_ns: b.mean_ns,
                    current_ns: p.mean_ns,
                    ratio,
                });
            }
        }
        deltas
    }
}

/// One scaling point's drift against a baseline curve, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingDelta {
    /// Kernel case name.
    pub kernel: String,
    /// Pool width of the compared point.
    pub pool: usize,
    /// Baseline mean, nanoseconds.
    pub baseline_ns: u64,
    /// Current mean, nanoseconds.
    pub current_ns: u64,
    /// `current_ns / baseline_ns`.
    pub ratio: f64,
    /// Ratio limit that applied to this point.
    pub max_ratio: f64,
    /// Whether the slowdown exceeds the limit.
    pub regressed: bool,
}

/// One timed benchmark from a criterion-shim run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenchRecord {
    /// Benchmark id (e.g. `"exec/threaded_mini_4dev_6steps"`).
    pub id: String,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: u64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

/// A persisted bench run (`BENCH_e2e.json` from the micro bench).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchSuite {
    /// Suite name (the bench target).
    pub suite: String,
    /// Active process-global kernel policy during the run.
    pub kernel_policy: String,
    /// Machine fingerprint of the run (see [`machine_fingerprint`]). The
    /// regression gate only *enforces* nanosecond tolerances when the
    /// current fingerprint matches the baseline's; cross-machine
    /// comparisons are reported but do not fail the gate.
    pub fingerprint: String,
    /// All measurements, in execution order.
    pub records: Vec<BenchRecord>,
}

impl ArtifactPayload for BenchSuite {
    const SCHEMA: &'static str = "pipebd.bench_suite";
    // v2: added `fingerprint` (the regression gate's escape hatch).
    // v3: the fingerprint carries the pool budget, and the micro bench
    //     records pool-swept executor ids (`…_p{1,2,4}`).
    const VERSION: u32 = 3;
}

/// Per-metric slowdown tolerance for [`BenchSuite::compare_with`].
///
/// A benchmark regresses when `current_ns > baseline_ns × max_ratio`. The
/// default ratio covers single-threaded microbenches; noisier ids (the
/// threaded executor, anything scheduling-bound) can carry looser
/// overrides, matched by longest prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchTolerance {
    /// Ratio limit applied when no override matches.
    pub default_max_ratio: f64,
    /// `(id_prefix, max_ratio)` overrides; the longest matching prefix
    /// wins.
    pub overrides: Vec<(String, f64)>,
    /// Absolute noise floor in nanoseconds: a slowdown only regresses when
    /// it also exceeds `baseline + floor_ns`. Sub-100µs microbenches on a
    /// contended core jitter by whole multiples of their mean; the floor
    /// keeps them from flagging while leaving every bench large enough to
    /// matter fully ratio-gated.
    pub floor_ns: u64,
}

impl BenchTolerance {
    /// The regression gate's default policy: 1.6× on microbenches, 2.2× on
    /// the threaded-executor and relay-pipeline benches (thread scheduling
    /// on shared runners is noisy), 100 µs absolute noise floor.
    pub fn gate_default() -> Self {
        BenchTolerance {
            default_max_ratio: 1.6,
            overrides: vec![("exec/".into(), 2.2), ("relay/pipeline".into(), 2.2)],
            floor_ns: 100_000,
        }
    }

    /// The regression gate's policy for thread-scaling curves: 2.0× per
    /// point (a pool width whose time doubles lost its decomposition) with
    /// a 30 µs floor — scaling points are best-of-N means of ~50–500 µs
    /// kernels, steadier than end-to-end benches, so they can carry a
    /// tighter floor than [`BenchTolerance::gate_default`].
    pub fn scaling_default() -> Self {
        BenchTolerance {
            default_max_ratio: 2.0,
            overrides: vec![],
            floor_ns: 30_000,
        }
    }

    /// The ratio limit for a benchmark id.
    pub fn max_ratio(&self, id: &str) -> f64 {
        self.overrides
            .iter()
            .filter(|(prefix, _)| id.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
            .map_or(self.default_max_ratio, |(_, r)| *r)
    }

    /// Whether a `(baseline, current)` pair regresses under this policy:
    /// the slowdown must exceed both the id's ratio limit and the absolute
    /// noise floor.
    pub fn regresses(&self, id: &str, baseline_ns: u64, current_ns: u64) -> bool {
        let over_floor = current_ns > baseline_ns.saturating_add(self.floor_ns);
        let over_ratio = if baseline_ns == 0 {
            current_ns > 0
        } else {
            current_ns as f64 / baseline_ns as f64 > self.max_ratio(id)
        };
        over_floor && over_ratio
    }
}

/// One benchmark's drift against a baseline, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Benchmark id.
    pub id: String,
    /// Baseline mean, nanoseconds.
    pub baseline_ns: u64,
    /// Current mean, nanoseconds.
    pub current_ns: u64,
    /// `current_ns / baseline_ns`.
    pub ratio: f64,
    /// Ratio limit that applied to this id.
    pub max_ratio: f64,
    /// Whether the slowdown exceeds the limit.
    pub regressed: bool,
}

impl BenchSuite {
    /// Summarizes drift against a baseline suite: `(id, baseline_ns,
    /// current_ns)` for every id present in both.
    pub fn compare(&self, baseline: &BenchSuite) -> Vec<(String, u64, u64)> {
        self.records
            .iter()
            .filter_map(|r| {
                baseline
                    .records
                    .iter()
                    .find(|b| b.id == r.id)
                    .map(|b| (r.id.clone(), b.mean_ns, r.mean_ns))
            })
            .collect()
    }

    /// Compares against a baseline under per-metric tolerances: one
    /// [`BenchDelta`] per id present in both suites, with `regressed` set
    /// when the slowdown ratio exceeds the id's limit. This is the
    /// perf-regression gate's core primitive; callers decide whether a
    /// regression is fatal (same machine fingerprint) or informational.
    pub fn compare_with(&self, baseline: &BenchSuite, tol: &BenchTolerance) -> Vec<BenchDelta> {
        self.compare(baseline)
            .into_iter()
            .map(|(id, baseline_ns, current_ns)| {
                let ratio = if baseline_ns == 0 {
                    f64::INFINITY
                } else {
                    current_ns as f64 / baseline_ns as f64
                };
                let max_ratio = tol.max_ratio(&id);
                BenchDelta {
                    regressed: tol.regresses(&id, baseline_ns, current_ns),
                    id,
                    baseline_ns,
                    current_ns,
                    ratio,
                    max_ratio,
                }
            })
            .collect()
    }
}

/// A stable identifier for the machine a bench artifact was recorded on.
///
/// Resolution order: the `PIPEBD_BENCH_FINGERPRINT` environment variable
/// (explicit override for fleets), else the first `model name` line of
/// `/proc/cpuinfo` plus the logical core count, else the compile-time
/// architecture. Deliberately date-free and boot-stable so two runs on the
/// same host always agree.
pub fn machine_fingerprint() -> String {
    if let Ok(explicit) = std::env::var("PIPEBD_BENCH_FINGERPRINT") {
        let trimmed = explicit.trim();
        if !trimmed.is_empty() {
            return trimmed.to_string();
        }
    }
    let cores = std::thread::available_parallelism().map_or(0, |n| n.get());
    if let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") {
        for line in cpuinfo.lines() {
            if let Some(rest) = line.strip_prefix("model name") {
                if let Some((_, model)) = rest.split_once(':') {
                    return format!("{} x{cores}", model.trim());
                }
            }
        }
    }
    format!("{} x{cores}", std::env::consts::ARCH)
}

/// [`machine_fingerprint`] extended with the compute-pool budget the run
/// was recorded under (`… pool<N>`). Thread-scaling baselines and pooled
/// executor benches are only comparable when both the host *and* the pool
/// budget match — a `PIPEBD_POOL` override changes the numbers without
/// changing the machine — so v3 bench artifacts key on both.
pub fn pooled_fingerprint(pool_budget: usize) -> String {
    format!("{} pool{pool_budget}", machine_fingerprint())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suite(ns: &[(&str, u64)], fingerprint: &str) -> BenchSuite {
        BenchSuite {
            suite: "micro".into(),
            kernel_policy: "blocked".into(),
            fingerprint: fingerprint.into(),
            records: ns
                .iter()
                .map(|(id, mean_ns)| BenchRecord {
                    id: (*id).to_string(),
                    mean_ns: *mean_ns,
                    iters: 10,
                })
                .collect(),
        }
    }

    #[test]
    fn tolerance_prefix_overrides_win_by_length() {
        let tol = BenchTolerance {
            default_max_ratio: 1.5,
            overrides: vec![("exec/".into(), 2.0), ("exec/threaded".into(), 3.0)],
            floor_ns: 0,
        };
        assert_eq!(tol.max_ratio("tensor/matmul_64"), 1.5);
        assert_eq!(tol.max_ratio("exec/hybrid"), 2.0);
        assert_eq!(tol.max_ratio("exec/threaded_mini"), 3.0);
    }

    #[test]
    fn compare_with_flags_only_out_of_budget_slowdowns() {
        let baseline = suite(&[("a", 100_000), ("b", 100_000), ("c", 100_000)], "m1");
        let current = suite(&[("a", 120_000), ("b", 200_000), ("d", 50_000)], "m1");
        let tol = BenchTolerance {
            default_max_ratio: 1.5,
            overrides: vec![],
            floor_ns: 0,
        };
        let deltas = current.compare_with(&baseline, &tol);
        // `c` is missing from current, `d` from baseline: both skipped.
        assert_eq!(deltas.len(), 2);
        assert!(!deltas[0].regressed, "1.2x is within the 1.5x budget");
        assert!(deltas[1].regressed, "2.0x exceeds the 1.5x budget");
        assert!((deltas[1].ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn noise_floor_shields_tiny_benches_only() {
        let tol = BenchTolerance {
            default_max_ratio: 1.5,
            overrides: vec![],
            floor_ns: 100_000,
        };
        // 10 µs → 20 µs: 2x ratio but a 10 µs delta — noise, not a
        // regression.
        assert!(!tol.regresses("tiny", 10_000, 20_000));
        // 1 ms → 2 ms: same ratio, far over the floor — regression.
        assert!(tol.regresses("big", 1_000_000, 2_000_000));
        // 1 ms → 1.2 ms: over the floor but within ratio — fine.
        assert!(!tol.regresses("big", 1_000_000, 1_200_000));
    }

    #[test]
    fn compare_speedups_flags_collapsed_wins() {
        let case = |kernel: &str, speedup: f64| KernelComparison {
            kernel: kernel.into(),
            naive_ns: 1000,
            blocked_ns: (1000.0 / speedup) as u64,
            speedup,
        };
        let baseline = BenchKernels {
            kernel_policy: "blocked".into(),
            fingerprint: "m1".into(),
            cases: vec![case("conv", 10.0), case("matmul", 4.0)],
            scaling: vec![],
        };
        let current = BenchKernels {
            kernel_policy: "blocked".into(),
            fingerprint: "m1".into(),
            cases: vec![case("conv", 8.0), case("matmul", 1.2)],
            scaling: vec![],
        };
        let deltas = current.compare_speedups(&baseline, 0.5);
        assert!(!deltas[0].regressed, "8x retains >50% of 10x");
        assert!(deltas[1].regressed, "1.2x lost >50% of 4x");
    }

    fn kernels_with_curve(points: &[(usize, u64)]) -> BenchKernels {
        BenchKernels {
            kernel_policy: "blocked".into(),
            fingerprint: "m1 pool4".into(),
            cases: vec![],
            scaling: vec![ScalingCurve {
                kernel: "matmul_128".into(),
                points: points
                    .iter()
                    .map(|&(pool, mean_ns)| ScalingPoint { pool, mean_ns })
                    .collect(),
            }],
        }
    }

    #[test]
    fn compare_scaling_flags_collapsed_points_only() {
        let baseline = kernels_with_curve(&[(1, 200_000), (2, 120_000), (4, 80_000)]);
        // Pool 4 collapsed back to the serial time (its decomposition is
        // gone); pools 1–2 drift within budget.
        let current = kernels_with_curve(&[(1, 210_000), (2, 150_000), (4, 200_000)]);
        let deltas = current.compare_scaling(&baseline, &BenchTolerance::scaling_default());
        assert_eq!(deltas.len(), 3);
        assert!(!deltas[0].regressed, "1.05x at pool 1 is noise");
        assert!(!deltas[1].regressed, "1.25x at pool 2 is within budget");
        assert!(deltas[2].regressed, "2.5x at pool 4 lost the decomposition");
        assert_eq!(deltas[2].pool, 4);
    }

    #[test]
    fn compare_scaling_skips_unmatched_kernels_and_pools() {
        let baseline = kernels_with_curve(&[(1, 200_000), (2, 120_000)]);
        let mut current = kernels_with_curve(&[(1, 200_000), (8, 60_000)]);
        current.scaling.push(ScalingCurve {
            kernel: "only_current".into(),
            points: vec![ScalingPoint {
                pool: 1,
                mean_ns: 1,
            }],
        });
        let deltas = current.compare_scaling(&baseline, &BenchTolerance::scaling_default());
        // Only (matmul_128, pool 1) overlaps.
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].pool, 1);
    }

    #[test]
    fn pooled_fingerprint_appends_the_budget() {
        let pooled = pooled_fingerprint(4);
        assert_eq!(pooled, format!("{} pool4", machine_fingerprint()));
        // Different budgets on the same host must not compare as equal.
        assert_ne!(pooled, pooled_fingerprint(1));
    }

    #[test]
    fn fingerprint_is_stable_and_nonempty() {
        let a = machine_fingerprint();
        let b = machine_fingerprint();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn gate_default_loosens_executor_benches() {
        let tol = BenchTolerance::gate_default();
        assert!(tol.max_ratio("exec/threaded_mini_4dev_6steps") > tol.max_ratio("tensor/matmul"));
    }
}
