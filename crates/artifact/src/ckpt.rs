//! Durable checkpoint persistence: a [`CheckpointSink`] backed by the
//! artifact store.
//!
//! The recovery plane's in-memory sink dies with the process; this one
//! survives it. Each store round-trips the checkpoint through a
//! schema-tagged `pipebd.checkpoint` envelope (bitwise, by the JSON
//! crate's float round-trip contract), written atomically — a crash
//! mid-save leaves the previous envelope intact, never a torn file. A
//! file that *is* torn (truncated by an external crash, corrupted on
//! disk) surfaces as a structured error from [`CheckpointStore::latest`],
//! never a silent "no checkpoint": silently restarting from scratch when
//! a checkpoint existed would discard training the operator paid for.

use std::io;
use std::path::PathBuf;

use pipebd_core::{Checkpoint, CheckpointSink};

use crate::{ArtifactError, ArtifactStore};

/// A [`CheckpointSink`] that persists checkpoints as artifacts.
///
/// Keeps the highest-round checkpoint under one artifact name (decoupled
/// pipelines complete rounds out of order, so stores can arrive stale).
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    store: ArtifactStore,
    name: String,
}

impl CheckpointStore {
    /// A checkpoint store writing `<root>/<name>.json`.
    pub fn at(root: impl Into<PathBuf>, name: impl Into<String>) -> Self {
        CheckpointStore {
            store: ArtifactStore::at(root),
            name: name.into(),
        }
    }

    /// A checkpoint store inside an existing artifact store.
    pub fn in_store(store: ArtifactStore, name: impl Into<String>) -> Self {
        CheckpointStore {
            store,
            name: name.into(),
        }
    }

    /// The path the checkpoint lands at.
    pub fn path(&self) -> PathBuf {
        self.store.path_of(&self.name)
    }

    fn load_latest(&self) -> Result<Option<Checkpoint>, String> {
        match self.store.load::<Checkpoint>(&self.name) {
            Ok(ckpt) => Ok(Some(ckpt)),
            // No file yet is the one benign miss: nothing was ever stored.
            Err(ArtifactError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            // Anything else — torn JSON, schema drift, read failure — is a
            // hard error. A checkpoint existed; losing it must be loud.
            Err(e) => Err(format!("checkpoint `{}`: {e}", self.name)),
        }
    }
}

impl CheckpointSink for CheckpointStore {
    fn store(&self, checkpoint: &Checkpoint) -> Result<(), String> {
        // Round-max semantics, matching the in-memory sink: never replace
        // a newer checkpoint with a stale round. A torn incumbent is the
        // exception — overwriting it with a valid envelope is the repair.
        if let Ok(Some(existing)) = self.load_latest() {
            if existing.round >= checkpoint.round {
                return Ok(());
            }
        }
        self.store
            .save(&self.name, checkpoint)
            .map(|_| ())
            .map_err(|e| format!("checkpoint `{}`: {e}", self.name))
    }

    fn latest(&self) -> Result<Option<Checkpoint>, String> {
        self.load_latest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipebd_core::BlockState;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("pipebd_ckpt_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    fn checkpoint(round: usize) -> Checkpoint {
        Checkpoint {
            round,
            data_cursor: (round * 8) as u64,
            batch: 8,
            lr: 0.05,
            momentum: 0.9,
            plan_fingerprint: "1x1:test".to_string(),
            blocks: vec![BlockState {
                block: 0,
                params: vec![],
                velocities: vec![],
                losses: vec![0.25; round],
            }],
        }
    }

    #[test]
    fn roundtrips_and_keeps_the_highest_round() {
        let root = temp_root("roundtrip");
        let sink = CheckpointStore::at(&root, "ckpt");
        assert_eq!(sink.latest().unwrap(), None, "empty store has no latest");

        sink.store(&checkpoint(4)).unwrap();
        assert_eq!(sink.latest().unwrap().unwrap(), checkpoint(4));

        // A stale round must not clobber the incumbent.
        sink.store(&checkpoint(2)).unwrap();
        assert_eq!(sink.latest().unwrap().unwrap().round, 4);

        sink.store(&checkpoint(6)).unwrap();
        assert_eq!(sink.latest().unwrap().unwrap(), checkpoint(6));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_file_is_a_hard_error_not_a_silent_miss() {
        let root = temp_root("torn");
        let sink = CheckpointStore::at(&root, "ckpt");
        sink.store(&checkpoint(3)).unwrap();

        // Simulate a crash that truncated the envelope mid-write (only
        // possible through paths that bypass the atomic rename).
        let text = std::fs::read_to_string(sink.path()).unwrap();
        std::fs::write(sink.path(), &text[..text.len() / 2]).unwrap();

        let err = sink.latest().unwrap_err();
        assert!(
            err.contains("ckpt"),
            "torn-file error should name the checkpoint: {err}"
        );

        // Storing a fresh checkpoint repairs the torn incumbent.
        sink.store(&checkpoint(1)).unwrap();
        assert_eq!(sink.latest().unwrap().unwrap().round, 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn save_leaves_no_tmp_sibling_behind() {
        let root = temp_root("atomic");
        let sink = CheckpointStore::at(&root, "ckpt");
        sink.store(&checkpoint(5)).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "atomic save must not leave tmp files");
        let _ = std::fs::remove_dir_all(&root);
    }
}
