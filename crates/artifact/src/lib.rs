//! The artifact plane: durable, machine-readable run and bench records.
//!
//! Every figure bin, bench, and schedule search in this workspace used to
//! print human text and exit; the numbers lived on only as prose in
//! `EXPERIMENTS.md`. This crate gives them a persistent form: an
//! [`ArtifactStore`] writes schema-tagged, versioned JSON envelopes under
//! `target/artifacts/` and reads them back with drift checks, so measured
//! profiles can feed the scheduler (PipeDream-style measured-profile
//! workflows) and bench baselines can be tracked in-repo.
//!
//! # Envelope format
//!
//! ```json
//! {
//!   "schema": "pipebd.run_report",
//!   "version": 1,
//!   "name": "fig2_motivation",
//!   "created_unix_s": 1753000000,
//!   "payload": { ... }
//! }
//! ```
//!
//! `schema` and `version` come from the payload type's
//! [`ArtifactPayload`] impl; [`ArtifactStore::load`] rejects mismatches
//! ([`ArtifactError::Schema`] / [`ArtifactError::Version`]) so a payload
//! struct can only evolve together with a version bump.

mod ckpt;
mod payload;
mod store;
mod trace;

pub use ckpt::CheckpointStore;
pub use payload::{
    machine_fingerprint, pooled_fingerprint, BenchDelta, BenchKernels, BenchRecord, BenchSuite,
    BenchTolerance, BlockCost, CostProfile, KernelComparison, RunSet, ScalingCurve, ScalingDelta,
    ScalingPoint, SpeedupDelta,
};
pub use store::{ArtifactError, ArtifactMeta, ArtifactStore};
pub use trace::{GateCheck, GateReport, TraceArtifact};

use pipebd_core::{Checkpoint, RunReport};
use pipebd_sched::StagePlan;
use serde::{de::DeserializeOwned, Serialize};

/// A type that can be persisted as a schema-tagged artifact.
pub trait ArtifactPayload: Serialize + DeserializeOwned {
    /// Schema identifier stamped into the envelope (e.g.
    /// `"pipebd.run_report"`).
    const SCHEMA: &'static str;
    /// Schema version; bump when the payload layout changes.
    const VERSION: u32;
}

impl ArtifactPayload for RunReport {
    const SCHEMA: &'static str = "pipebd.run_report";
    const VERSION: u32 = 1;
}

impl ArtifactPayload for StagePlan {
    const SCHEMA: &'static str = "pipebd.schedule_plan";
    const VERSION: u32 = 1;
}

impl ArtifactPayload for Checkpoint {
    const SCHEMA: &'static str = "pipebd.checkpoint";
    const VERSION: u32 = 1;
}
