//! Store-level guarantees: envelopes round-trip bit-for-bit, schema and
//! version drift is rejected, and persisted cost profiles replay into the
//! scheduler's `ProfileTable` unchanged.

use std::path::PathBuf;

use pipebd_artifact::{
    ArtifactError, ArtifactStore, BenchKernels, BenchRecord, BenchSuite, CostProfile,
    KernelComparison, RunSet,
};
use pipebd_core::{ExecutorChoice, ExperimentBuilder, RunReport, Strategy};
use pipebd_models::Workload;
use pipebd_sched::{CostModel, Profiler, StagePlan};
use pipebd_sim::{GpuModel, HardwareConfig};

/// A unique, throwaway store root per test.
fn scratch_store(tag: &str) -> ArtifactStore {
    let root = std::env::temp_dir().join(format!("pipebd_artifact_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    ArtifactStore::at(root)
}

fn report(strategy: Strategy) -> RunReport {
    ExperimentBuilder::new(Workload::synthetic(6, false))
        .hardware(HardwareConfig::a6000_server(4))
        .batch_size(64)
        .sim_rounds(4)
        .executor(ExecutorChoice::Threaded)
        .build()
        .expect("valid experiment")
        .run(strategy)
        .expect("strategy lowers")
}

#[test]
fn run_report_persists_and_reloads_exactly() {
    let store = scratch_store("report");
    let original = report(Strategy::PipeBd);
    let path = store.save("pipebd_run", &original).expect("save");
    assert!(path.exists());
    let loaded: RunReport = store.load("pipebd_run").expect("load");
    assert_eq!(loaded, original);
    assert!(store.matches("pipebd_run", &original).expect("matches"));
    // A different report is a mismatch, not an error.
    let other = report(Strategy::DataParallel);
    assert!(!store.matches("pipebd_run", &other).expect("matches"));
}

#[test]
fn envelope_meta_is_stamped() {
    let store = scratch_store("meta");
    let plan = StagePlan::contiguous(6, 4).expect("plan");
    store.save("plan", &plan).expect("save");
    let (meta, loaded): (_, StagePlan) = store.load_with_meta("plan").expect("load");
    assert_eq!(meta.schema, "pipebd.schedule_plan");
    assert_eq!(meta.version, 1);
    assert_eq!(meta.name, "plan");
    assert!(meta.created_unix_s > 0);
    assert_eq!(loaded, plan);
}

#[test]
fn schema_and_version_drift_are_rejected() {
    let store = scratch_store("drift");
    let plan = StagePlan::contiguous(6, 4).expect("plan");
    store.save("plan", &plan).expect("save");
    // Loading under the wrong payload type fails on the schema tag.
    match store.load::<RunReport>("plan") {
        Err(ArtifactError::Schema { found, expected }) => {
            assert_eq!(found, "pipebd.schedule_plan");
            assert_eq!(expected, "pipebd.run_report");
        }
        other => panic!("expected schema error, got {other:?}"),
    }
    // Tampering with the version tag fails on the version check.
    let path = store.path_of("plan");
    let text = std::fs::read_to_string(&path).expect("read");
    std::fs::write(&path, text.replace("\"version\": 1", "\"version\": 999")).expect("write");
    match store.load::<StagePlan>("plan") {
        Err(ArtifactError::Version { found, expected }) => {
            assert_eq!(found, 999);
            assert_eq!(expected, 1);
        }
        other => panic!("expected version error, got {other:?}"),
    }
    // A gutted envelope is malformed.
    std::fs::write(&path, "{\"payload\": {}}").expect("write");
    assert!(matches!(
        store.load::<StagePlan>("plan"),
        Err(ArtifactError::Malformed(_))
    ));
}

#[test]
fn listing_is_sorted_and_tolerates_missing_root() {
    let store = scratch_store("list");
    assert_eq!(store.list().expect("empty list"), Vec::<String>::new());
    let plan = StagePlan::contiguous(6, 4).expect("plan");
    store.save("zeta", &plan).expect("save");
    store.save("alpha", &plan).expect("save");
    assert_eq!(store.list().expect("list"), vec!["alpha", "zeta"]);
    assert_eq!(store.root(), &PathBuf::from(store.root()));
}

#[test]
fn cost_profile_replays_into_the_scheduler() {
    let store = scratch_store("profile");
    let workload = Workload::nas_cifar10();
    let gpu = GpuModel::a6000();
    let table = Profiler::new(CostModel::new(gpu.clone())).profile(&workload.model, 256, 4);
    let profile = CostProfile::from_table(
        workload.label(),
        gpu.name.clone(),
        256,
        4,
        &workload.model,
        &table,
    );
    store.save("profile", &profile).expect("save");
    let loaded: CostProfile = store.load("profile").expect("load");
    assert_eq!(loaded, profile);
    // The rebuilt table is indistinguishable from the original.
    let rebuilt = loaded.to_table().expect("rebuild");
    assert_eq!(rebuilt, table);
    // Malformed rows are rejected.
    let mut broken = profile.clone();
    broken.blocks[0].teacher_ns.pop();
    assert!(broken.to_table().is_err());
}

#[test]
fn bench_payloads_roundtrip_and_compare() {
    let store = scratch_store("bench");
    let kernels = BenchKernels {
        kernel_policy: "blocked".into(),
        fingerprint: pipebd_artifact::pooled_fingerprint(4),
        cases: vec![KernelComparison {
            kernel: "conv2d_8x16x16".into(),
            naive_ns: 1000,
            blocked_ns: 125,
            speedup: 8.0,
        }],
        scaling: vec![pipebd_artifact::ScalingCurve {
            kernel: "conv2d_8x16x16".into(),
            points: vec![
                pipebd_artifact::ScalingPoint {
                    pool: 1,
                    mean_ns: 125,
                },
                pipebd_artifact::ScalingPoint {
                    pool: 4,
                    mean_ns: 40,
                },
            ],
        }],
    };
    store.save("BENCH_kernels", &kernels).expect("save");
    assert_eq!(
        store.load::<BenchKernels>("BENCH_kernels").expect("load"),
        kernels
    );

    let suite = BenchSuite {
        suite: "micro".into(),
        kernel_policy: "blocked".into(),
        fingerprint: pipebd_artifact::machine_fingerprint(),
        records: vec![
            BenchRecord {
                id: "relay/hop_shared_1mb".into(),
                mean_ns: 105,
                iters: 30,
            },
            BenchRecord {
                id: "exec/threaded_mini".into(),
                mean_ns: 52_800_000,
                iters: 5,
            },
        ],
    };
    store.save("BENCH_e2e", &suite).expect("save");
    let loaded: BenchSuite = store.load("BENCH_e2e").expect("load");
    assert_eq!(loaded, suite);
    let mut drifted = suite.clone();
    drifted.records[1].mean_ns = 60_000_000;
    let deltas = drifted.compare(&suite);
    assert_eq!(
        deltas,
        vec![
            ("relay/hop_shared_1mb".to_string(), 105, 105),
            ("exec/threaded_mini".to_string(), 52_800_000, 60_000_000),
        ]
    );
}

#[test]
fn run_set_holds_a_figure_sweep() {
    let store = scratch_store("runset");
    let set = RunSet {
        figure: "fig_test".into(),
        description: "synthetic sweep".into(),
        reports: vec![report(Strategy::DataParallel), report(Strategy::PipeBd)],
    };
    store.save("fig_test", &set).expect("save");
    let loaded: RunSet = store.load("fig_test").expect("load");
    assert_eq!(loaded, set);
}
