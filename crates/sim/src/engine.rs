//! The execution engine.
//!
//! Each resource executes its enqueued tasks strictly in insertion order
//! (in-order streams, like CUDA streams); a task starts when both its
//! resource is free and all its dependencies have finished.
//!
//! Because [`TaskGraph::add`] rejects forward references and every resource
//! is FIFO in insertion order, a task's start time depends only on
//! earlier-inserted tasks. Simulation is therefore a single linear pass and
//! can never deadlock — graph construction enforces acyclicity by
//! construction.

use crate::task::{Resource, TaskGraph, TaskId, TaskKind};
use crate::time::SimTime;

/// The timing outcome of simulating a [`TaskGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// Start time per task (indexed by `TaskId::index`).
    pub start: Vec<SimTime>,
    /// Finish time per task.
    pub finish: Vec<SimTime>,
    /// Stall before each task: the gap between its resource becoming free
    /// and its start, attributed to the kind of the latest-finishing
    /// dependency. Used to attribute "waiting for data" vs "waiting for
    /// relay" in the Fig. 2 breakdown.
    pub stall: Vec<(SimTime, Option<TaskKind>)>,
    /// Completion time of the whole graph.
    pub makespan: SimTime,
}

impl SimRun {
    /// Finish time of a specific task.
    pub fn finish_of(&self, id: TaskId) -> SimTime {
        self.finish[id.index()]
    }

    /// Start time of a specific task.
    pub fn start_of(&self, id: TaskId) -> SimTime {
        self.start[id.index()]
    }
}

/// Executes the task graph, returning per-task times.
///
/// Runs in `O(tasks + dependencies)`.
pub fn simulate(graph: &TaskGraph) -> SimRun {
    let n = graph.len();
    let mut start = vec![SimTime::ZERO; n];
    let mut finish = vec![SimTime::ZERO; n];
    let mut stall = vec![(SimTime::ZERO, None); n];
    let mut res_free = vec![SimTime::ZERO; graph.num_resources()];
    let mut makespan = SimTime::ZERO;

    for (id, task) in graph.iter() {
        let idx = id.index();
        let r = graph.resource_index(task.resource);
        let mut latest = SimTime::ZERO;
        let mut latest_kind = None;
        for d in &task.deps {
            let f = finish[d.index()];
            if f >= latest {
                latest = f;
                latest_kind = Some(graph.task(*d).kind);
            }
        }
        let free = res_free[r];
        let s = if latest > free { latest } else { free };
        let gap = s.saturating_sub(free);
        start[idx] = s;
        finish[idx] = s + task.duration;
        stall[idx] = if gap > SimTime::ZERO {
            (gap, latest_kind)
        } else {
            (SimTime::ZERO, None)
        };
        res_free[r] = finish[idx];
        if finish[idx] > makespan {
            makespan = finish[idx];
        }
    }

    SimRun {
        start,
        finish,
        stall,
        makespan,
    }
}

/// Total busy time per GPU rank (durations of tasks on the compute stream).
pub fn busy_per_gpu(graph: &TaskGraph) -> Vec<SimTime> {
    let mut busy = vec![SimTime::ZERO; graph.num_gpus()];
    for (_, t) in graph.iter() {
        if let Resource::Gpu(i) = t.resource {
            busy[i] += t.duration;
        }
    }
    busy
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Resource::{Copy, Gpu, Loader};
    use crate::task::TaskKind::*;

    fn ns(x: u64) -> SimTime {
        SimTime::from_ns(x)
    }

    #[test]
    fn serial_tasks_on_one_resource() {
        let mut g = TaskGraph::new(1);
        let a = g.add(Gpu(0), Teacher, ns(10), vec![]);
        let b = g.add(Gpu(0), Student, ns(20), vec![]);
        let run = simulate(&g);
        assert_eq!(run.start_of(a).as_ns(), 0);
        assert_eq!(run.start_of(b).as_ns(), 10);
        assert_eq!(run.makespan.as_ns(), 30);
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = TaskGraph::new(2);
        let a = g.add(Gpu(0), Teacher, ns(10), vec![]);
        let b = g.add(Gpu(0), Student, ns(15), vec![a]);
        let c = g.add(Gpu(1), Teacher, ns(5), vec![a]);
        let d = g.add(Gpu(1), Student, ns(1), vec![b, c]);
        let run = simulate(&g);
        assert_eq!(run.start_of(c).as_ns(), 10);
        assert_eq!(run.start_of(d).as_ns(), 25);
        assert_eq!(run.makespan.as_ns(), 26);
    }

    #[test]
    fn cross_device_pipeline_reaches_steady_state() {
        // Two-stage pipeline: stage0 on gpu0 (10ns), stage1 on gpu1 (20ns)
        // with a 1ns relay. Steady-state period = max stage time (20ns).
        let mut g = TaskGraph::new(2);
        let steps: u32 = 50;
        for s in 0..steps {
            let t0 = g.add_tagged(Gpu(0), Teacher, ns(10), vec![], Some(0), s);
            let send = g.add_tagged(Copy(0), Comm, ns(1), vec![t0], Some(0), s);
            g.add_tagged(Gpu(1), Teacher, ns(20), vec![send], Some(1), s);
        }
        let run = simulate(&g);
        // Fill (10 + 1) then 50 periods of 20ns on the bottleneck stage.
        assert_eq!(run.makespan.as_ns(), 11 + steps as u64 * 20);
    }

    #[test]
    fn loader_is_a_shared_bottleneck() {
        let mut g = TaskGraph::new(2);
        let l0 = g.add(Loader, Load, ns(100), vec![]);
        let l1 = g.add(Loader, Load, ns(100), vec![]);
        let c0 = g.add(Gpu(0), Teacher, ns(10), vec![l0]);
        let c1 = g.add(Gpu(1), Teacher, ns(10), vec![l1]);
        let run = simulate(&g);
        assert_eq!(run.start_of(c0).as_ns(), 100);
        assert_eq!(run.start_of(c1).as_ns(), 200, "loads serialize on the pool");
        assert_eq!(run.stall[c1.index()].1, Some(Load));
    }

    #[test]
    fn stall_attribution_records_latest_dep_kind() {
        let mut g = TaskGraph::new(2);
        let t = g.add(Gpu(0), Teacher, ns(50), vec![]);
        let send = g.add(Copy(0), Comm, ns(5), vec![t]);
        let s = g.add(Gpu(1), Student, ns(10), vec![send]);
        let run = simulate(&g);
        assert_eq!(run.stall[s.index()].0.as_ns(), 55);
        assert_eq!(run.stall[s.index()].1, Some(Comm));
    }

    #[test]
    fn copy_engine_overlaps_with_compute() {
        let mut g = TaskGraph::new(1);
        let t = g.add(Gpu(0), Teacher, ns(10), vec![]);
        let send = g.add(Copy(0), Comm, ns(100), vec![t]);
        let s = g.add(Gpu(0), Student, ns(10), vec![t]);
        let run = simulate(&g);
        // Student runs while the copy engine transfers.
        assert_eq!(run.start_of(s).as_ns(), 10);
        assert_eq!(run.finish_of(send).as_ns(), 110);
        assert_eq!(run.makespan.as_ns(), 110);
    }

    #[test]
    fn barrier_sync_aligns_next_step() {
        // Two devices with unequal work; a Sync barrier forces the faster
        // one to wait (the TR-without-DPU behaviour).
        let mut g = TaskGraph::new(2);
        let a = g.add(Gpu(0), Student, ns(10), vec![]);
        let b = g.add(Gpu(1), Student, ns(50), vec![]);
        let barrier = g.add(Gpu(0), Sync, ns(0), vec![a, b]);
        let next0 = g.add(Gpu(0), Teacher, ns(5), vec![barrier]);
        let run = simulate(&g);
        assert_eq!(run.start_of(next0).as_ns(), 50);
    }

    #[test]
    fn busy_per_gpu_counts_compute_only() {
        let mut g = TaskGraph::new(2);
        g.add(Gpu(0), Teacher, ns(10), vec![]);
        g.add(Copy(0), Comm, ns(99), vec![]);
        g.add(Gpu(1), Student, ns(20), vec![]);
        let busy = busy_per_gpu(&g);
        assert_eq!(busy[0].as_ns(), 10);
        assert_eq!(busy[1].as_ns(), 20);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::new(1);
        let run = simulate(&g);
        assert_eq!(run.makespan, SimTime::ZERO);
    }

    #[test]
    fn start_depends_only_on_earlier_tasks() {
        // Insertion order is a valid execution order: adding unrelated
        // tasks later never changes earlier tasks' times.
        let mut g = TaskGraph::new(2);
        let a = g.add(Gpu(0), Teacher, ns(7), vec![]);
        let before = simulate(&g);
        g.add(Gpu(1), Student, ns(1000), vec![]);
        let after = simulate(&g);
        assert_eq!(before.start_of(a), after.start_of(a));
        assert_eq!(before.finish_of(a), after.finish_of(a));
    }
}
