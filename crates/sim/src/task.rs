//! Task-graph vocabulary: resources, task kinds, and the graph builder.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Identifies a task within a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The dense index of this task.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// An execution resource in the simulated server.
///
/// Every resource executes its tasks serially, in enqueue order (like a
/// CUDA stream). Compute and copy are separate resources per device so
/// transfers overlap with kernels, as the paper's implementation does; the
/// loader pool is a single shared resource, which is what makes redundant
/// data loading expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Resource {
    /// Compute stream of GPU `i`.
    Gpu(usize),
    /// Copy engine (DMA) of GPU `i`.
    Copy(usize),
    /// The shared host loader worker pool.
    Loader,
}

/// What a task represents (used for breakdowns and Gantt rendering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// Batch decode on the loader pool, or consumer-side collate + H2D copy.
    Load,
    /// Teacher block forward pass.
    Teacher,
    /// Student block forward + backward.
    Student,
    /// Parameter update.
    Update,
    /// Point-to-point activation relay.
    Comm,
    /// Data-parallel gradient all-reduce.
    GradShare,
    /// Zero-duration synchronization marker.
    Sync,
    /// Online replanning overhead after a fault event: re-running the AHD
    /// search and redistributing parameters/optimizer state before the
    /// next segment's schedule starts.
    Replan,
}

/// One node of the simulated execution DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Where the task runs.
    pub resource: Resource,
    /// What it represents.
    pub kind: TaskKind,
    /// How long it takes.
    pub duration: SimTime,
    /// Tasks that must finish before this one starts.
    pub deps: Vec<TaskId>,
    /// Block index for trace labeling (if block-associated).
    pub block: Option<u16>,
    /// Training step this task belongs to (for trace filtering).
    pub step: u32,
}

/// A builder for the execution DAG of one (or a few) training epochs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskGraph {
    pub(crate) tasks: Vec<Task>,
    pub(crate) num_gpus: usize,
}

impl TaskGraph {
    /// Creates an empty graph over `num_gpus` devices.
    pub fn new(num_gpus: usize) -> Self {
        TaskGraph {
            tasks: Vec::new(),
            num_gpus,
        }
    }

    /// Number of GPUs in the simulated server.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Adds a task and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a dependency id is out of range (forward references are
    /// impossible by construction) or the resource names a GPU outside the
    /// configured device count.
    pub fn add(
        &mut self,
        resource: Resource,
        kind: TaskKind,
        duration: SimTime,
        deps: Vec<TaskId>,
    ) -> TaskId {
        self.add_tagged(resource, kind, duration, deps, None, 0)
    }

    /// Adds a task with a block label and step index for tracing.
    ///
    /// # Panics
    ///
    /// Same conditions as [`TaskGraph::add`].
    pub fn add_tagged(
        &mut self,
        resource: Resource,
        kind: TaskKind,
        duration: SimTime,
        deps: Vec<TaskId>,
        block: Option<u16>,
        step: u32,
    ) -> TaskId {
        match resource {
            Resource::Gpu(i) | Resource::Copy(i) => {
                assert!(
                    i < self.num_gpus,
                    "resource names GPU {i} of {}",
                    self.num_gpus
                )
            }
            Resource::Loader => {}
        }
        for d in &deps {
            assert!(
                d.index() < self.tasks.len(),
                "dependency {:?} not yet added",
                d
            );
        }
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            resource,
            kind,
            duration,
            deps,
            block,
            step,
        });
        id
    }

    /// Read access to a task.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Iterates over `(TaskId, &Task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &Task)> {
        self.tasks
            .iter()
            .enumerate()
            .map(|(i, t)| (TaskId(i as u32), t))
    }

    /// Dense resource index used by the engine.
    pub(crate) fn resource_index(&self, r: Resource) -> usize {
        match r {
            Resource::Gpu(i) => i,
            Resource::Copy(i) => self.num_gpus + i,
            Resource::Loader => 2 * self.num_gpus,
        }
    }

    /// Total number of distinct resources.
    pub(crate) fn num_resources(&self) -> usize {
        2 * self.num_gpus + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut g = TaskGraph::new(2);
        let a = g.add(
            Resource::Gpu(0),
            TaskKind::Teacher,
            SimTime::from_ns(10),
            vec![],
        );
        let b = g.add(
            Resource::Gpu(1),
            TaskKind::Student,
            SimTime::from_ns(5),
            vec![a],
        );
        assert_eq!(g.len(), 2);
        assert_eq!(g.task(b).deps, vec![a]);
        assert_eq!(g.task(a).kind, TaskKind::Teacher);
    }

    #[test]
    #[should_panic(expected = "not yet added")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new(1);
        g.add(
            Resource::Gpu(0),
            TaskKind::Teacher,
            SimTime::ZERO,
            vec![TaskId(5)],
        );
    }

    #[test]
    #[should_panic(expected = "resource names GPU")]
    fn out_of_range_gpu_panics() {
        let mut g = TaskGraph::new(2);
        g.add(Resource::Gpu(2), TaskKind::Teacher, SimTime::ZERO, vec![]);
    }

    #[test]
    fn resource_indices_are_dense_and_distinct() {
        let g = TaskGraph::new(3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..3 {
            assert!(seen.insert(g.resource_index(Resource::Gpu(i))));
            assert!(seen.insert(g.resource_index(Resource::Copy(i))));
        }
        assert!(seen.insert(g.resource_index(Resource::Loader)));
        assert_eq!(seen.len(), g.num_resources());
    }
}
