//! Discrete-event simulator of a single-node multi-GPU training server.
//!
//! This crate is the reproduction's stand-in for the paper's hardware
//! (4× RTX A6000 / 4× RTX 2080 Ti servers): a deterministic task-graph
//! simulator with
//!
//! * a roofline [`GpuModel`] whose occupancy-based efficiency penalizes
//!   small per-device batches (the reason data parallelism underutilizes
//!   GPUs in the baseline),
//! * a [`PcieModel`] for activation relays and gradient all-reduce,
//! * a shared [`HostModel`] loader pool where redundant data loading
//!   queues up, and
//! * per-rank [`Breakdown`]s and ASCII Gantt charts ([`render_gantt`])
//!   reproducing the paper's Fig. 2 and Fig. 5 visualizations.
//!
//! The strategy lowering lives in `pipebd-core`; this crate only knows how
//! to execute task graphs.
//!
//! # Example
//!
//! ```
//! use pipebd_sim::{simulate, Resource, SimTime, TaskGraph, TaskKind};
//!
//! let mut g = TaskGraph::new(2);
//! let t0 = g.add(Resource::Gpu(0), TaskKind::Teacher, SimTime::from_us(10.0), vec![]);
//! let send = g.add(Resource::Copy(0), TaskKind::Comm, SimTime::from_us(1.0), vec![t0]);
//! let t1 = g.add(Resource::Gpu(1), TaskKind::Teacher, SimTime::from_us(10.0), vec![send]);
//! let run = simulate(&g);
//! assert_eq!(run.finish_of(t1), SimTime::from_us(21.0));
//! ```

#![warn(missing_docs)]

mod engine;
mod fault;
mod gpu;
mod hardware;
mod host;
mod interconnect;
mod task;
mod time;
mod trace;

pub use engine::{busy_per_gpu, simulate, SimRun};
pub use fault::{
    simulate_faulted, FaultEvent, FaultRecord, FaultScript, FaultSimRun, FaultViolation,
};
pub use gpu::GpuModel;
pub use hardware::HardwareConfig;
pub use host::HostModel;
pub use interconnect::PcieModel;
pub use task::{Resource, Task, TaskGraph, TaskId, TaskKind};
pub use time::SimTime;
pub use trace::{render_gantt, Breakdown, RankBreakdown};
