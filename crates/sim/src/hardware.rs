//! Complete server configurations (the paper's Table I environments).

use serde::{Deserialize, Serialize};

use crate::gpu::GpuModel;
use crate::host::HostModel;
use crate::interconnect::PcieModel;

/// A single-node multi-GPU training server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareConfig {
    /// GPU model (all devices identical, as in the paper).
    pub gpu: GpuModel,
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Interconnect between host and devices.
    pub pcie: PcieModel,
    /// Host CPU / loader pool.
    pub host: HostModel,
}

impl HardwareConfig {
    /// The paper's default environment: `n`× RTX A6000, EPYC 7302,
    /// PCIe 4.0.
    pub fn a6000_server(n: usize) -> Self {
        HardwareConfig {
            gpu: GpuModel::a6000(),
            num_gpus: n,
            pcie: PcieModel::gen4_x16(),
            host: HostModel::epyc7302(),
        }
    }

    /// The paper's low-cost environment: `n`× RTX 2080 Ti, 2× Xeon 4214,
    /// PCIe 3.0.
    pub fn rtx2080ti_server(n: usize) -> Self {
        HardwareConfig {
            gpu: GpuModel::rtx2080ti(),
            num_gpus: n,
            pcie: PcieModel::gen3_x16(),
            host: HostModel::xeon4214_dual(),
        }
    }

    /// A short identifier for reports, e.g. `"4x RTX A6000"`.
    pub fn label(&self) -> String {
        format!("{}x {}", self.num_gpus, self.gpu.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_one() {
        let a = HardwareConfig::a6000_server(4);
        assert_eq!(a.num_gpus, 4);
        assert_eq!(a.pcie.name, "PCIe 4.0 x16");
        assert_eq!(a.host.name, "EPYC 7302");
        let t = HardwareConfig::rtx2080ti_server(4);
        assert_eq!(t.pcie.name, "PCIe 3.0 x16");
        assert!(t.gpu.peak_flops < a.gpu.peak_flops);
    }

    #[test]
    fn label_formats() {
        assert_eq!(HardwareConfig::a6000_server(4).label(), "4x RTX A6000");
    }
}
