//! Per-rank time breakdowns and ASCII Gantt charts.
//!
//! The breakdown reproduces the paper's Fig. 2 categories (data loading,
//! teacher execution, student execution, idle); the Gantt chart reproduces
//! the schedule illustrations of Fig. 5b/5c.

use serde::{Deserialize, Serialize};

use crate::engine::SimRun;
use crate::task::{Resource, TaskGraph, TaskKind};
use crate::time::SimTime;

/// Time breakdown for one GPU rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankBreakdown {
    /// Consumer-side load work (collate + H2D copy) on the compute stream.
    pub load: SimTime,
    /// Stall waiting on loader-pool dependencies.
    pub load_wait: SimTime,
    /// Teacher forward execution.
    pub teacher: SimTime,
    /// Student forward + backward execution.
    pub student: SimTime,
    /// Parameter updates.
    pub update: SimTime,
    /// Gradient all-reduce time on the compute stream.
    pub grad_share: SimTime,
    /// Online replanning overhead after fault events (fault plane only;
    /// zero for healthy runs).
    pub replan: SimTime,
    /// Remaining idle time (relay waits, barrier waits).
    pub idle: SimTime,
}

impl RankBreakdown {
    /// Data-loading total as the paper groups it (own load work + stalls
    /// attributable to loading).
    pub fn data_loading(&self) -> SimTime {
        self.load + self.load_wait
    }

    /// Everything the rank spends on student work (exec + update + grad
    /// sharing), the paper's "S exec" category.
    pub fn student_total(&self) -> SimTime {
        self.student + self.update + self.grad_share
    }

    /// Busy + idle total (= makespan for every rank).
    pub fn total(&self) -> SimTime {
        self.data_loading() + self.teacher + self.student_total() + self.replan + self.idle
    }
}

/// Breakdown over all ranks of a simulated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Per-rank entries, index = GPU rank.
    pub ranks: Vec<RankBreakdown>,
    /// Completion time of the run.
    pub makespan: SimTime,
}

impl Breakdown {
    /// Aggregates task durations and stalls from a simulated run.
    pub fn from_run(graph: &TaskGraph, run: &SimRun) -> Self {
        let mut ranks = vec![RankBreakdown::default(); graph.num_gpus()];
        for (id, t) in graph.iter() {
            let Resource::Gpu(rank) = t.resource else {
                continue;
            };
            let rb = &mut ranks[rank];
            match t.kind {
                TaskKind::Load => rb.load += t.duration,
                TaskKind::Teacher => rb.teacher += t.duration,
                TaskKind::Student => rb.student += t.duration,
                TaskKind::Update => rb.update += t.duration,
                TaskKind::GradShare => rb.grad_share += t.duration,
                TaskKind::Replan => rb.replan += t.duration,
                TaskKind::Comm | TaskKind::Sync => {}
            }
            let (stall, kind) = run.stall[id.index()];
            if stall > SimTime::ZERO {
                match kind {
                    Some(TaskKind::Load) => rb.load_wait += stall,
                    _ => rb.idle += stall,
                }
            }
        }
        // Pad trailing idle so every rank's total equals the makespan.
        for rb in &mut ranks {
            rb.idle += run.makespan.saturating_sub(rb.total());
        }
        Breakdown {
            ranks,
            makespan: run.makespan,
        }
    }

    /// Mean idle fraction across ranks.
    pub fn idle_fraction(&self) -> f64 {
        if self.ranks.is_empty() || self.makespan == SimTime::ZERO {
            return 0.0;
        }
        let idle: f64 = self.ranks.iter().map(|r| r.idle.as_secs_f64()).sum();
        idle / (self.ranks.len() as f64 * self.makespan.as_secs_f64())
    }
}

/// Renders an ASCII Gantt chart of the run (one row per GPU), reproducing
/// the schedule illustrations of the paper's Fig. 5b/5c.
///
/// Symbols: digits = teacher block, letters `a..` = student block,
/// `L` = load, `U` = update, `g` = gradient sharing, `R` = replanning
/// overhead, `·` = idle.
pub fn render_gantt(graph: &TaskGraph, run: &SimRun, columns: usize) -> String {
    let columns = columns.max(10);
    let span = run.makespan.as_ns().max(1);
    let mut rows = vec![vec!['\u{00b7}'; columns]; graph.num_gpus()];
    for (id, t) in graph.iter() {
        let Resource::Gpu(rank) = t.resource else {
            continue;
        };
        if t.duration == SimTime::ZERO {
            continue;
        }
        let s = run.start[id.index()].as_ns();
        let f = run.finish[id.index()].as_ns();
        let c0 = (s as u128 * columns as u128 / span as u128) as usize;
        let c1 = ((f as u128 * columns as u128).div_ceil(span as u128) as usize).min(columns);
        let ch = match t.kind {
            TaskKind::Load => 'L',
            TaskKind::Teacher => t
                .block
                .map(|b| char::from_digit((b % 10) as u32, 10).unwrap_or('T'))
                .unwrap_or('T'),
            TaskKind::Student => t
                .block
                .map(|b| (b'a' + (b % 26) as u8) as char)
                .unwrap_or('s'),
            TaskKind::Update => 'U',
            TaskKind::GradShare => 'g',
            TaskKind::Replan => 'R',
            TaskKind::Comm => '>',
            TaskKind::Sync => '|',
        };
        for col in c0..c1.max(c0 + 1).min(columns) {
            rows[rank][col] = ch;
        }
    }
    let mut out = String::new();
    for (rank, row) in rows.iter().enumerate() {
        out.push_str(&format!("gpu{rank} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "      0 {:>width$}\n",
        format!("{}", run.makespan),
        width = columns
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::task::Resource::{Copy, Gpu, Loader};

    fn ns(x: u64) -> SimTime {
        SimTime::from_ns(x)
    }

    fn sample_run() -> (TaskGraph, SimRun) {
        let mut g = TaskGraph::new(2);
        let l = g.add(Loader, TaskKind::Load, ns(30), vec![]);
        let lc = g.add(Gpu(0), TaskKind::Load, ns(10), vec![l]);
        let t0 = g.add_tagged(Gpu(0), TaskKind::Teacher, ns(20), vec![lc], Some(0), 0);
        let send = g.add_tagged(Copy(0), TaskKind::Comm, ns(5), vec![t0], Some(0), 0);
        let s0 = g.add_tagged(Gpu(0), TaskKind::Student, ns(40), vec![t0], Some(0), 0);
        let u0 = g.add_tagged(Gpu(0), TaskKind::Update, ns(2), vec![s0], Some(0), 0);
        let t1 = g.add_tagged(Gpu(1), TaskKind::Teacher, ns(20), vec![send], Some(1), 0);
        let s1 = g.add_tagged(Gpu(1), TaskKind::Student, ns(30), vec![t1], Some(1), 0);
        let u1 = g.add_tagged(Gpu(1), TaskKind::Update, ns(2), vec![s1], Some(1), 0);
        let _ = (u0, u1);
        let run = simulate(&g);
        (g, run)
    }

    #[test]
    fn breakdown_sums_to_makespan_per_rank() {
        let (g, run) = sample_run();
        let b = Breakdown::from_run(&g, &run);
        for (rank, rb) in b.ranks.iter().enumerate() {
            assert_eq!(rb.total(), b.makespan, "rank {rank}");
        }
    }

    #[test]
    fn breakdown_attributes_load_wait() {
        let (g, run) = sample_run();
        let b = Breakdown::from_run(&g, &run);
        // gpu0's consumer-load waits 30ns on the loader pool.
        assert_eq!(b.ranks[0].load_wait.as_ns(), 30);
        assert_eq!(b.ranks[0].load.as_ns(), 10);
        assert_eq!(b.ranks[0].teacher.as_ns(), 20);
        assert_eq!(b.ranks[0].student.as_ns(), 40);
    }

    #[test]
    fn idle_fraction_bounded() {
        let (g, run) = sample_run();
        let b = Breakdown::from_run(&g, &run);
        let f = b.idle_fraction();
        assert!((0.0..=1.0).contains(&f), "fraction {f}");
        assert!(f > 0.0, "gpu1 idles during the relay fill");
    }

    #[test]
    fn gantt_renders_rows_and_symbols() {
        let (g, run) = sample_run();
        let chart = render_gantt(&g, &run, 40);
        assert!(chart.contains("gpu0 |"));
        assert!(chart.contains("gpu1 |"));
        assert!(chart.contains('0'), "teacher block digit");
        assert!(chart.contains('a'), "student block letter");
        assert!(chart.contains('L'), "load marker");
    }

    #[test]
    fn gantt_handles_empty_graph() {
        let g = TaskGraph::new(1);
        let run = simulate(&g);
        let chart = render_gantt(&g, &run, 20);
        assert!(chart.contains("gpu0"));
    }
}
