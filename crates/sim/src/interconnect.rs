//! PCIe interconnect model for activation relays and gradient sharing.

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A PCIe link between host and devices (and peer-to-peer between devices).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcieModel {
    /// Generation label, e.g. `"PCIe 4.0 x16"`.
    pub name: String,
    /// Effective unidirectional bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Per-transfer latency.
    pub latency: SimTime,
}

impl PcieModel {
    /// PCIe 4.0 ×16 (the A6000 server): ~26 GB/s effective.
    pub fn gen4_x16() -> Self {
        PcieModel {
            name: "PCIe 4.0 x16".into(),
            bandwidth: 26e9,
            latency: SimTime::from_us(8.0),
        }
    }

    /// PCIe 3.0 ×16 (the 2080 Ti server): ~13 GB/s effective.
    pub fn gen3_x16() -> Self {
        PcieModel {
            name: "PCIe 3.0 x16".into(),
            bandwidth: 13e9,
            latency: SimTime::from_us(8.0),
        }
    }

    /// Time for a point-to-point transfer of `bytes` (one relay hop or one
    /// host-to-device batch copy).
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        SimTime::from_secs_f64(bytes as f64 / self.bandwidth) + self.latency
    }

    /// Time for a ring all-reduce of `bytes` across `n` participants
    /// (`2(n−1)/n` traversals of the buffer per rank).
    pub fn allreduce_time(&self, bytes: u64, n: usize) -> SimTime {
        if n <= 1 {
            return SimTime::ZERO;
        }
        let factor = 2.0 * (n as f64 - 1.0) / n as f64;
        SimTime::from_secs_f64(factor * bytes as f64 / self.bandwidth)
            + SimTime::from_ns(self.latency.as_ns() * 2 * (n as u64 - 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen4_faster_than_gen3() {
        let b = 100 << 20;
        assert!(PcieModel::gen4_x16().transfer_time(b) < PcieModel::gen3_x16().transfer_time(b));
    }

    #[test]
    fn transfer_includes_latency() {
        let p = PcieModel::gen4_x16();
        assert_eq!(p.transfer_time(0), p.latency);
    }

    #[test]
    fn allreduce_single_rank_is_free() {
        let p = PcieModel::gen4_x16();
        assert_eq!(p.allreduce_time(1 << 20, 1), SimTime::ZERO);
    }

    #[test]
    fn allreduce_scales_with_participants() {
        let p = PcieModel::gen4_x16();
        let t2 = p.allreduce_time(100 << 20, 2);
        let t4 = p.allreduce_time(100 << 20, 4);
        // 2(n-1)/n: 1.0 for n=2, 1.5 for n=4.
        assert!(t4 > t2);
        let ratio = t4.as_secs_f64() / t2.as_secs_f64();
        assert!((1.2..1.8).contains(&ratio), "ratio {ratio}");
    }
}
