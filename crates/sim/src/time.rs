//! Simulated time.

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds from simulation start.
///
/// Nanosecond integer ticks keep the event engine exactly deterministic
/// (no float accumulation across hundreds of thousands of events).
///
/// # Example
///
/// ```
/// use pipebd_sim::SimTime;
///
/// let t = SimTime::from_secs_f64(1.5e-3) + SimTime::from_us(500.0);
/// assert!((t.as_secs_f64() - 2e-3).abs() < 1e-12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// From nanoseconds.
    pub fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub fn from_us(us: f64) -> Self {
        SimTime((us * 1e3).round().max(0.0) as u64)
    }

    /// From seconds (f64; rounded to the nearest nanosecond).
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime((secs * 1e9).round().max(0.0) as u64)
    }

    /// As seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// As nanoseconds.
    pub fn as_ns(&self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.as_secs_f64();
        if s >= 60.0 {
            write!(f, "{}m {:.1}s", (s / 60.0) as u64, s % 60.0)
        } else if s >= 1.0 {
            write!(f, "{s:.2}s")
        } else if s >= 1e-3 {
            write!(f, "{:.2}ms", s * 1e3)
        } else {
            write!(f, "{:.1}us", s * 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(2.5);
        assert_eq!(t.as_ns(), 2_500_000_000);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(SimTime::from_us(1.5).as_ns(), 1500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let total: SimTime = [a, b].into_iter().sum();
        assert_eq!(total.as_ns(), 140);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_secs_f64(90.0)), "1m 30.0s");
        assert_eq!(format!("{}", SimTime::from_secs_f64(2.0)), "2.00s");
        assert_eq!(format!("{}", SimTime::from_us(1500.0)), "1.50ms");
        assert_eq!(format!("{}", SimTime::from_us(2.0)), "2.0us");
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }
}
