//! Roofline-style GPU cost model.
//!
//! A kernel's duration is the maximum of its compute time and its memory
//! time, plus launch overhead. Compute throughput is scaled by an occupancy
//! efficiency `occ / (occ + occ_half)` where `occ = batch × parallelism`
//! and *parallelism* is the mean number of live output elements per sample
//! (channels × spatial positions averaged over the block's layers): small
//! per-device batches and narrow late-network layers underutilize the
//! device — the effect that makes data parallelism slow in the paper's
//! baseline (and that makes the gap worse on bigger GPUs, the paper's
//! Fig. 5 observation).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Parameters of one GPU type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Marketing name, e.g. `"RTX A6000"`.
    pub name: String,
    /// Peak fp32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Per-kernel launch overhead.
    pub launch_overhead: SimTime,
    /// Occupancy half-saturation point, in `batch × live-elements` units.
    /// Larger devices need more parallel work to reach peak.
    pub occ_half: f64,
    /// Device memory capacity in bytes (for reporting; the simulator does
    /// not enforce it, matching how the paper reports memory overhead).
    pub mem_capacity: u64,
}

impl GpuModel {
    /// NVIDIA RTX A6000 (Ampere, 84 SMs, 48 GB): the paper's default GPU.
    pub fn a6000() -> Self {
        GpuModel {
            name: "RTX A6000".into(),
            peak_flops: 38.7e12,
            mem_bw: 768e9,
            launch_overhead: SimTime::from_us(4.0),
            occ_half: 3_500_000.0,
            mem_capacity: 48 * (1 << 30),
        }
    }

    /// NVIDIA RTX 2080 Ti (Turing, 68 SMs, 11 GB): the paper's low-cost
    /// alternative.
    pub fn rtx2080ti() -> Self {
        GpuModel {
            name: "RTX 2080Ti".into(),
            peak_flops: 13.4e12,
            mem_bw: 616e9,
            launch_overhead: SimTime::from_us(4.0),
            occ_half: 1_000_000.0,
            mem_capacity: 11 * (1 << 30),
        }
    }

    /// A uniformly degraded copy of this GPU: every kernel runs exactly
    /// `factor`× slower.
    ///
    /// Throughputs (`peak_flops`, `mem_bw`) divide by the factor and the
    /// launch overhead multiplies by it, while the occupancy curve
    /// (`occ_half`) is untouched — so [`GpuModel::exec_time`] scales by
    /// exactly `factor` for every workload, matching how the fault plane's
    /// `simulate_faulted` scales already-lowered task durations.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is finite and `>= 1.0`.
    pub fn slowed(&self, factor: f64) -> GpuModel {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "slowdown factor {factor} must be finite and >= 1"
        );
        GpuModel {
            name: if factor == 1.0 {
                self.name.clone()
            } else {
                format!("{} ({factor}x slow)", self.name)
            },
            peak_flops: self.peak_flops / factor,
            mem_bw: self.mem_bw / factor,
            launch_overhead: SimTime::from_secs_f64(self.launch_overhead.as_secs_f64() * factor),
            occ_half: self.occ_half,
            mem_capacity: self.mem_capacity,
        }
    }

    /// Occupancy efficiency in `(0, 1)` for a given amount of parallel work
    /// (`parallelism` = mean live elements per sample).
    pub fn efficiency(&self, batch: usize, parallelism: u64) -> f64 {
        let occ = batch as f64 * parallelism as f64;
        occ / (occ + self.occ_half)
    }

    /// Duration of a fused block execution.
    ///
    /// * `macs` — multiply-accumulates for the whole batch.
    /// * `bytes` — activation + weight traffic for the whole batch.
    /// * `parallelism` — mean live output elements per sample.
    /// * `batch` — per-device batch size.
    /// * `kernels` — number of kernel launches.
    pub fn exec_time(
        &self,
        macs: u64,
        bytes: u64,
        parallelism: u64,
        batch: usize,
        kernels: u32,
    ) -> SimTime {
        let eff = self.efficiency(batch, parallelism.max(1));
        let flops = 2.0 * macs as f64;
        let compute_s = flops / (self.peak_flops * eff);
        let mem_s = bytes as f64 / self.mem_bw;
        let overhead = self.launch_overhead.as_secs_f64() * kernels as f64;
        SimTime::from_secs_f64(compute_s.max(mem_s) + overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_power() {
        let a = GpuModel::a6000();
        let t = GpuModel::rtx2080ti();
        assert!(a.peak_flops > t.peak_flops);
        assert!(a.mem_capacity > t.mem_capacity);
        assert!(a.occ_half > t.occ_half, "bigger GPU needs more work");
    }

    #[test]
    fn efficiency_increases_with_batch() {
        let g = GpuModel::a6000();
        let small = g.efficiency(16, 196);
        let large = g.efficiency(256, 196);
        assert!(large > small);
        assert!(large < 1.0);
    }

    #[test]
    fn exec_time_monotone_in_work() {
        let g = GpuModel::a6000();
        let t1 = g.exec_time(1_000_000, 1_000, 196, 64, 1);
        let t2 = g.exec_time(10_000_000, 1_000, 196, 64, 1);
        assert!(t2 > t1);
    }

    #[test]
    fn batch_scaling_is_sublinear_at_small_batch() {
        // Doubling batch less than doubles time when underutilized: the
        // justification for teacher relaying's full-batch execution.
        let g = GpuModel::a6000();
        let t64 = g.exec_time(64 * 1_000_000, 64, 49, 64, 1);
        let t256 = g.exec_time(256 * 1_000_000, 256, 49, 256, 1);
        let ratio = t256.as_secs_f64() / t64.as_secs_f64();
        assert!(ratio < 3.5, "ratio {ratio} should be < 4 (sublinear)");
    }

    #[test]
    fn small_gpu_less_sensitive_to_occupancy() {
        // Fig. 5: block-0 dominance is *more* extreme on A6000 because the
        // other blocks underutilize the bigger device more.
        let a = GpuModel::a6000();
        let t = GpuModel::rtx2080ti();
        let late_block = (64usize, 49u64); // small spatial extent
        let eff_a = a.efficiency(late_block.0, late_block.1);
        let eff_t = t.efficiency(late_block.0, late_block.1);
        assert!(eff_t > eff_a);
    }

    #[test]
    fn slowed_scales_exec_time_exactly() {
        let g = GpuModel::a6000();
        for factor in [1.0, 1.5, 2.0, 4.0] {
            let s = g.slowed(factor);
            for (macs, bytes, par, batch, kernels) in [
                (64_000_000u64, 2_000_000u64, 196u64, 64usize, 3u32),
                (1_000u64, 768_000_000u64, 10_000u64, 256usize, 1u32),
            ] {
                let healthy = g.exec_time(macs, bytes, par, batch, kernels).as_secs_f64();
                let slow = s.exec_time(macs, bytes, par, batch, kernels).as_secs_f64();
                assert!(
                    (slow - factor * healthy).abs() <= 2e-9,
                    "factor {factor}: {slow} vs {}",
                    factor * healthy
                );
            }
        }
        assert_eq!(g.slowed(1.0), g, "unit factor is the identity");
    }

    #[test]
    #[should_panic(expected = "must be finite and >= 1")]
    fn slowed_rejects_speedups() {
        GpuModel::a6000().slowed(0.5);
    }

    #[test]
    fn memory_bound_kernels_hit_bandwidth_roof() {
        let g = GpuModel::a6000();
        // Tiny compute, huge traffic.
        let t = g.exec_time(1_000, 768_000_000, 10_000, 256, 1);
        // 768 MB at 768 GB/s = 1 ms (+4us launch).
        assert!((t.as_secs_f64() - 1.004e-3).abs() < 2e-5, "{t}");
    }
}
