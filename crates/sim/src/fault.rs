//! Fault scripts: deterministic perturbations of a healthy simulation.
//!
//! Production clusters are not the fixed, healthy servers of the paper's
//! Table I: hosts straggle, lose devices, and (in elastic settings) join
//! mid-run. A [`FaultScript`] is a seed-free, ordered event list — per-rank
//! slowdown windows, host loss, host join, loader-pool degradation — that
//! [`simulate_faulted`] applies on top of an already-lowered [`TaskGraph`]
//! by scaling task durations per `(rank, step)`. Everything stays exactly
//! deterministic: the same graph and script always produce the same run,
//! and every applied event is echoed back as a [`FaultRecord`] so tests can
//! assert the trace matches the injected script.
//!
//! Time in a script is measured in *training steps* (the `step` tag every
//! lowered task carries), not wall-clock: a slowdown window `[start, end)`
//! covers a task iff `start <= task.step < end`. That keeps scripts
//! meaningful across strategies whose wall-clock schedules differ.

use serde::{Deserialize, Serialize};

use crate::engine::{simulate, SimRun};
use crate::task::{Resource, TaskGraph};
use crate::time::SimTime;

/// One deterministic perturbation of the simulated cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// GPU `rank` (compute *and* copy engine) runs `factor`× slower for
    /// every task whose step lies in `[start_step, end_step)`.
    Slowdown {
        /// Affected GPU rank.
        rank: usize,
        /// Multiplicative duration factor, `>= 1.0`.
        factor: f64,
        /// First slowed step (inclusive).
        start_step: u32,
        /// First healthy step again (exclusive bound).
        end_step: u32,
    },
    /// GPU `rank` disappears at `at_step`: any task tagged with a step
    /// `>= at_step` on that rank is a [`FaultViolation`] — the schedule
    /// must have been replanned around the loss.
    HostLoss {
        /// Lost GPU rank.
        rank: usize,
        /// First step at which the rank is gone.
        at_step: u32,
    },
    /// GPU `rank` only becomes available at `at_step` (elastic join): any
    /// task on it tagged with an earlier step is a [`FaultViolation`].
    HostJoin {
        /// Joining GPU rank.
        rank: usize,
        /// First step at which the rank exists.
        at_step: u32,
    },
    /// The shared loader pool degrades by `factor`× for steps in
    /// `[start_step, end_step)` (e.g. host cache thrash), scaling
    /// loader-resource task durations.
    LoaderSlowdown {
        /// Multiplicative duration factor, `>= 1.0`.
        factor: f64,
        /// First slowed step (inclusive).
        start_step: u32,
        /// First healthy step again (exclusive bound).
        end_step: u32,
    },
}

/// A deterministic, ordered list of fault events.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultScript {
    /// The events, applied in list order. [`FaultScript::validate`]
    /// rejects overlapping slowdown windows for the same rank and
    /// loss-before-join orderings — perturbations the executor-level
    /// fault driver cannot realize.
    pub events: Vec<FaultEvent>,
}

/// Why a task graph cannot execute under a fault script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultViolation {
    /// A task was scheduled on a rank after its [`FaultEvent::HostLoss`].
    TaskOnDeadRank {
        /// The offending rank.
        rank: usize,
        /// The earliest offending step.
        step: u32,
    },
    /// A task was scheduled on a rank before its [`FaultEvent::HostJoin`].
    TaskBeforeJoin {
        /// The offending rank.
        rank: usize,
        /// The earliest offending step.
        step: u32,
    },
    /// Two [`FaultEvent::Slowdown`] windows for the same rank overlap.
    /// The executor's fault driver realizes exactly one pause factor per
    /// `(rank, step)`, so compounding windows (which the simulator used
    /// to multiply silently) are unrealizable.
    OverlappingSlowdowns {
        /// The doubly-slowed rank.
        rank: usize,
        /// The first step covered by both windows.
        step: u32,
    },
    /// A rank's [`FaultEvent::HostLoss`] precedes (or coincides with) its
    /// [`FaultEvent::HostJoin`]. Membership conjoins all events, so such
    /// a rank would silently be dead from the loss step onward — the
    /// executor driver cannot bring a cancelled worker back.
    LossBeforeJoin {
        /// The rank with the unrealizable membership order.
        rank: usize,
        /// The step the rank is lost.
        loss_step: u32,
        /// The (never effective) join step.
        join_step: u32,
    },
    /// The script itself is malformed for this graph.
    InvalidScript(
        /// Human-readable reason.
        String,
    ),
}

impl std::fmt::Display for FaultViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultViolation::TaskOnDeadRank { rank, step } => {
                write!(f, "task on rank {rank} at step {step} after host loss")
            }
            FaultViolation::TaskBeforeJoin { rank, step } => {
                write!(f, "task on rank {rank} at step {step} before host join")
            }
            FaultViolation::OverlappingSlowdowns { rank, step } => {
                write!(
                    f,
                    "overlapping slowdown windows on rank {rank} (first shared step {step})"
                )
            }
            FaultViolation::LossBeforeJoin {
                rank,
                loss_step,
                join_step,
            } => {
                write!(
                    f,
                    "rank {rank} lost at step {loss_step} before its join at step {join_step}"
                )
            }
            FaultViolation::InvalidScript(why) => write!(f, "invalid fault script: {why}"),
        }
    }
}

impl std::error::Error for FaultViolation {}

impl FaultScript {
    /// The empty script: no perturbations.
    pub fn healthy() -> Self {
        FaultScript::default()
    }

    /// Whether the script perturbs anything at all.
    pub fn is_healthy(&self) -> bool {
        self.events.is_empty()
    }

    /// Structural validation against a server of `num_gpus` ranks.
    pub fn validate(&self, num_gpus: usize) -> Result<(), FaultViolation> {
        let bad = |why: String| Err(FaultViolation::InvalidScript(why));
        for e in &self.events {
            match *e {
                FaultEvent::Slowdown {
                    rank,
                    factor,
                    start_step,
                    end_step,
                } => {
                    if rank >= num_gpus {
                        return bad(format!("slowdown rank {rank} of {num_gpus}"));
                    }
                    if !(factor.is_finite() && factor >= 1.0) {
                        return bad(format!("slowdown factor {factor} must be >= 1"));
                    }
                    if start_step >= end_step {
                        return bad(format!("slowdown window [{start_step}, {end_step}) empty"));
                    }
                }
                FaultEvent::LoaderSlowdown {
                    factor,
                    start_step,
                    end_step,
                } => {
                    if !(factor.is_finite() && factor >= 1.0) {
                        return bad(format!("loader factor {factor} must be >= 1"));
                    }
                    if start_step >= end_step {
                        return bad(format!("loader window [{start_step}, {end_step}) empty"));
                    }
                }
                FaultEvent::HostLoss { rank, .. } | FaultEvent::HostJoin { rank, .. } => {
                    if rank >= num_gpus {
                        return bad(format!("membership rank {rank} of {num_gpus}"));
                    }
                }
            }
        }
        // Pairwise realizability checks. The executor driver pauses a
        // rank under at most one factor per step, and membership is the
        // conjunction of all events — so overlapping same-rank windows
        // and a loss at-or-before a join are silent lies the simulator
        // used to accept.
        for (i, a) in self.events.iter().enumerate() {
            for b in self.events.iter().skip(i + 1) {
                if let (
                    FaultEvent::Slowdown {
                        rank: ra,
                        start_step: sa,
                        end_step: ea,
                        ..
                    },
                    FaultEvent::Slowdown {
                        rank: rb,
                        start_step: sb,
                        end_step: eb,
                        ..
                    },
                ) = (a, b)
                {
                    if ra == rb && sa < eb && sb < ea {
                        return Err(FaultViolation::OverlappingSlowdowns {
                            rank: *ra,
                            step: (*sa).max(*sb),
                        });
                    }
                }
            }
        }
        for a in &self.events {
            if let FaultEvent::HostLoss { rank, at_step } = *a {
                for b in &self.events {
                    if let FaultEvent::HostJoin {
                        rank: r,
                        at_step: join_step,
                    } = *b
                    {
                        if r == rank && at_step <= join_step {
                            return Err(FaultViolation::LossBeforeJoin {
                                rank,
                                loss_step: at_step,
                                join_step,
                            });
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Projects the script onto the current member list after a
    /// membership change: events on dead ranks are dropped, member ranks
    /// are renumbered to their position in `members`, and loader events
    /// are kept verbatim. Steps stay global — a resumed run keeps
    /// counting training steps from the checkpoint, not from zero.
    ///
    /// Join events get the asymmetric treatment membership demands:
    ///
    /// * A join whose rank is already *in* `members` is **dropped**, not
    ///   remapped — the member has joined, and re-emitting the event
    ///   against its renumbered id would re-arm it, marking a live rank
    ///   dead before `at_step` on a resumed run.
    /// * A join whose rank is *absent* from `members` is a future member:
    ///   it is renumbered onto a fresh logical id appended after the
    ///   members (`members.len()`, `members.len() + 1`, ... in
    ///   deterministic `(at_step, rank)` order), so pending joins survive
    ///   the projection instead of vanishing. Non-join events on such a
    ///   rank (a slowdown or loss scheduled after it joins) follow it to
    ///   the fresh id.
    pub fn for_survivors(&self, members: &[usize]) -> FaultScript {
        let remap = |rank: usize| members.iter().position(|&m| m == rank);
        // Future members: ranks with a join event that are not in
        // `members` yet, ordered by (earliest join step, rank).
        let mut pending: Vec<(u32, usize)> = Vec::new();
        for e in &self.events {
            if let FaultEvent::HostJoin { rank, at_step } = *e {
                if remap(rank).is_none() {
                    match pending.iter_mut().find(|(_, r)| *r == rank) {
                        Some(p) => p.0 = p.0.min(at_step),
                        None => pending.push((at_step, rank)),
                    }
                }
            }
        }
        pending.sort_unstable();
        let fresh = |rank: usize| {
            pending
                .iter()
                .position(|&(_, r)| r == rank)
                .map(|i| members.len() + i)
        };
        let place = |rank: usize| remap(rank).or_else(|| fresh(rank));
        let events = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Slowdown {
                    rank,
                    factor,
                    start_step,
                    end_step,
                } => place(rank).map(|rank| FaultEvent::Slowdown {
                    rank,
                    factor,
                    start_step,
                    end_step,
                }),
                FaultEvent::HostLoss { rank, at_step } => {
                    place(rank).map(|rank| FaultEvent::HostLoss { rank, at_step })
                }
                FaultEvent::HostJoin { rank, at_step } => match remap(rank) {
                    Some(_) => None,
                    None => fresh(rank).map(|rank| FaultEvent::HostJoin { rank, at_step }),
                },
                FaultEvent::LoaderSlowdown {
                    factor,
                    start_step,
                    end_step,
                } => Some(FaultEvent::LoaderSlowdown {
                    factor,
                    start_step,
                    end_step,
                }),
            })
            .collect();
        FaultScript { events }
    }

    /// Join events for ranks at or beyond the `devices`-rank worker set —
    /// future members the executor has not spawned yet. Returns
    /// `(rank, at_step)` pairs sorted by `(at_step, rank)`.
    pub fn pending_joins(&self, devices: usize) -> Vec<(usize, u32)> {
        let mut joins: Vec<(u32, usize)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::HostJoin { rank, at_step } if rank >= devices => Some((at_step, rank)),
                _ => None,
            })
            .collect();
        joins.sort_unstable();
        joins.into_iter().map(|(s, r)| (r, s)).collect()
    }

    /// Combined slowdown factor for GPU `rank` at training `step`
    /// (product over all covering windows; `1.0` when healthy).
    pub fn factor(&self, rank: usize, step: u32) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Slowdown {
                    rank: r,
                    factor,
                    start_step,
                    end_step,
                } if r == rank && start_step <= step && step < end_step => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Combined loader-pool slowdown factor at training `step`.
    pub fn loader_factor(&self, step: u32) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LoaderSlowdown {
                    factor,
                    start_step,
                    end_step,
                } if start_step <= step && step < end_step => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Whether GPU `rank` is a cluster member at training `step`.
    pub fn alive(&self, rank: usize, step: u32) -> bool {
        self.events.iter().all(|e| match *e {
            FaultEvent::HostLoss { rank: r, at_step } => r != rank || step < at_step,
            FaultEvent::HostJoin { rank: r, at_step } => r != rank || step >= at_step,
            _ => true,
        })
    }

    /// The member ranks of an `num_gpus`-rank server at training `step`.
    pub fn alive_ranks(&self, num_gpus: usize, step: u32) -> Vec<usize> {
        (0..num_gpus).filter(|&r| self.alive(r, step)).collect()
    }

    /// The sorted, deduplicated steps at which the perturbation state
    /// changes (window starts/ends, membership transitions). Step 0 is
    /// included only if an event fires there.
    pub fn change_steps(&self) -> Vec<u32> {
        let mut steps: Vec<u32> = self
            .events
            .iter()
            .flat_map(|e| match *e {
                FaultEvent::Slowdown {
                    start_step,
                    end_step,
                    ..
                }
                | FaultEvent::LoaderSlowdown {
                    start_step,
                    end_step,
                    ..
                } => vec![start_step, end_step],
                FaultEvent::HostLoss { at_step, .. } | FaultEvent::HostJoin { at_step, .. } => {
                    vec![at_step]
                }
            })
            .collect();
        steps.sort_unstable();
        steps.dedup();
        steps
    }

    /// The last step at which anything changes (0 for a healthy script):
    /// from here on the perturbation state is final.
    pub fn settled_step(&self) -> u32 {
        self.change_steps().last().copied().unwrap_or(0)
    }
}

/// One applied script event with the number of tasks it touched.
///
/// For slowdowns, `tasks_affected` counts duration-scaled tasks; for
/// [`FaultEvent::HostLoss`] it counts the rank's tasks completed *before*
/// the loss, and for [`FaultEvent::HostJoin`] the rank's tasks *after* the
/// join — so a record list is a full audit of how the script met the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultRecord {
    /// The script event, echoed verbatim in script order.
    pub event: FaultEvent,
    /// How many tasks the event touched (see type docs).
    pub tasks_affected: usize,
}

/// The outcome of simulating a graph under a fault script.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimRun {
    /// The timing outcome over the perturbed durations.
    pub run: SimRun,
    /// The perturbed graph that was executed (durations scaled; structure
    /// and task order identical to the input graph).
    pub graph: TaskGraph,
    /// One record per script event, in script order.
    pub records: Vec<FaultRecord>,
}

/// The rank a task's duration is attributed to, if any.
fn task_rank(r: Resource) -> Option<usize> {
    match r {
        Resource::Gpu(i) | Resource::Copy(i) => Some(i),
        Resource::Loader => None,
    }
}

/// Scales a duration by a slowdown factor, rounding to the nearest tick.
///
/// Monotone non-decreasing in `factor`, and exactly the identity at 1.0 —
/// the properties the fault-plane proptests rely on.
fn scaled(d: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        return d;
    }
    SimTime::from_ns((d.as_ns() as f64 * factor).round() as u64)
}

/// Executes `graph` under `script`: every task's duration is scaled by the
/// combined slowdown factor of its resource at its step, and tasks that
/// land on non-member ranks (after a loss, before a join) are rejected.
///
/// A healthy script reproduces [`simulate`] exactly.
pub fn simulate_faulted(
    graph: &TaskGraph,
    script: &FaultScript,
) -> Result<FaultSimRun, FaultViolation> {
    script.validate(graph.num_gpus())?;

    let mut perturbed = TaskGraph::new(graph.num_gpus());
    for (_, t) in graph.iter() {
        let factor = match task_rank(t.resource) {
            Some(rank) => {
                if !script.alive(rank, t.step) {
                    // Distinguish "gone" from "not yet here" for the error.
                    let lost = script.events.iter().any(|e| {
                        matches!(*e, FaultEvent::HostLoss { rank: r, at_step }
                            if r == rank && t.step >= at_step)
                    });
                    return Err(if lost {
                        FaultViolation::TaskOnDeadRank { rank, step: t.step }
                    } else {
                        FaultViolation::TaskBeforeJoin { rank, step: t.step }
                    });
                }
                script.factor(rank, t.step)
            }
            None => script.loader_factor(t.step),
        };
        perturbed.add_tagged(
            t.resource,
            t.kind,
            scaled(t.duration, factor),
            t.deps.clone(),
            t.block,
            t.step,
        );
    }

    let records = script
        .events
        .iter()
        .map(|e| {
            let affected = graph
                .iter()
                .filter(|(_, t)| match *e {
                    FaultEvent::Slowdown {
                        rank,
                        start_step,
                        end_step,
                        ..
                    } => {
                        task_rank(t.resource) == Some(rank)
                            && start_step <= t.step
                            && t.step < end_step
                    }
                    FaultEvent::LoaderSlowdown {
                        start_step,
                        end_step,
                        ..
                    } => {
                        t.resource == Resource::Loader && start_step <= t.step && t.step < end_step
                    }
                    FaultEvent::HostLoss { rank, at_step } => {
                        task_rank(t.resource) == Some(rank) && t.step < at_step
                    }
                    FaultEvent::HostJoin { rank, at_step } => {
                        task_rank(t.resource) == Some(rank) && t.step >= at_step
                    }
                })
                .count();
            FaultRecord {
                event: e.clone(),
                tasks_affected: affected,
            }
        })
        .collect();

    let run = simulate(&perturbed);
    Ok(FaultSimRun {
        run,
        graph: perturbed,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Resource::{Copy, Gpu, Loader};
    use crate::task::TaskKind;

    fn ns(x: u64) -> SimTime {
        SimTime::from_ns(x)
    }

    /// Two ranks, `steps` steps; rank 0 runs 100ns, rank 1 runs 50ns per
    /// step; one 40ns loader decode per step.
    fn two_rank_graph(steps: u32) -> TaskGraph {
        let mut g = TaskGraph::new(2);
        for s in 0..steps {
            g.add_tagged(Loader, TaskKind::Load, ns(40), vec![], None, s);
            g.add_tagged(Gpu(0), TaskKind::Student, ns(100), vec![], Some(0), s);
            g.add_tagged(Gpu(1), TaskKind::Student, ns(50), vec![], Some(1), s);
        }
        g
    }

    fn gpu_duration(fsr: &FaultSimRun, rank: usize, step: u32) -> u64 {
        fsr.graph
            .iter()
            .find(|(_, t)| t.resource == Gpu(rank) && t.step == step)
            .map(|(_, t)| t.duration.as_ns())
            .expect("task exists")
    }

    #[test]
    fn healthy_script_reproduces_simulate_exactly() {
        let g = two_rank_graph(4);
        let fsr = simulate_faulted(&g, &FaultScript::healthy()).unwrap();
        assert_eq!(fsr.run, simulate(&g));
        assert_eq!(fsr.graph, g);
        assert!(fsr.records.is_empty());
    }

    #[test]
    fn slowdown_window_is_start_inclusive_end_exclusive() {
        let g = two_rank_graph(5);
        let script = FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank: 0,
                factor: 2.0,
                start_step: 1,
                end_step: 3,
            }],
        };
        let fsr = simulate_faulted(&g, &script).unwrap();
        assert_eq!(gpu_duration(&fsr, 0, 0), 100, "before start: healthy");
        assert_eq!(gpu_duration(&fsr, 0, 1), 200, "start step: slowed");
        assert_eq!(gpu_duration(&fsr, 0, 2), 200, "inside window: slowed");
        assert_eq!(gpu_duration(&fsr, 0, 3), 100, "end step: healthy again");
        assert_eq!(gpu_duration(&fsr, 0, 4), 100);
        // The other rank is untouched throughout.
        for s in 0..5 {
            assert_eq!(gpu_duration(&fsr, 1, s), 50);
        }
    }

    #[test]
    fn overlapping_slowdowns_on_one_rank_are_rejected() {
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 0,
                    end_step: 4,
                },
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 1.5,
                    start_step: 2,
                    end_step: 6,
                },
            ],
        };
        assert_eq!(
            script.validate(2),
            Err(FaultViolation::OverlappingSlowdowns { rank: 0, step: 2 })
        );
        assert!(
            matches!(
                simulate_faulted(&two_rank_graph(4), &script),
                Err(FaultViolation::OverlappingSlowdowns { .. })
            ),
            "the simulator must refuse what the executor driver cannot realize"
        );
    }

    #[test]
    fn adjacent_or_cross_rank_slowdowns_still_validate() {
        // Back-to-back windows on one rank (end == next start) and a
        // genuinely overlapping window on a *different* rank are fine.
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 0,
                    end_step: 4,
                },
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 1.5,
                    start_step: 4,
                    end_step: 6,
                },
                FaultEvent::Slowdown {
                    rank: 1,
                    factor: 3.0,
                    start_step: 2,
                    end_step: 5,
                },
            ],
        };
        script.validate(2).expect("disjoint windows are realizable");
        assert_eq!(script.factor(0, 3), 2.0);
        assert_eq!(script.factor(0, 4), 1.5);
        assert_eq!(script.factor(1, 4), 3.0);
    }

    #[test]
    fn loss_before_join_on_one_rank_is_rejected() {
        let script = FaultScript {
            events: vec![
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 3,
                },
                FaultEvent::HostJoin {
                    rank: 1,
                    at_step: 5,
                },
            ],
        };
        assert_eq!(
            script.validate(2),
            Err(FaultViolation::LossBeforeJoin {
                rank: 1,
                loss_step: 3,
                join_step: 5,
            })
        );
        // Join-then-loss is realizable: the rank exists on [2, 5).
        let ok = FaultScript {
            events: vec![
                FaultEvent::HostJoin {
                    rank: 1,
                    at_step: 2,
                },
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 5,
                },
            ],
        };
        ok.validate(2)
            .expect("join-then-loss is a realizable window");
        assert!(!ok.alive(1, 1));
        assert!(ok.alive(1, 3));
        assert!(!ok.alive(1, 5));
        // Loss and join on *different* ranks never conflict.
        let cross = FaultScript {
            events: vec![
                FaultEvent::HostLoss {
                    rank: 0,
                    at_step: 3,
                },
                FaultEvent::HostJoin {
                    rank: 1,
                    at_step: 5,
                },
            ],
        };
        cross.validate(2).expect("cross-rank loss/join is fine");
    }

    #[test]
    fn for_survivors_renumbers_and_drops_dead_ranks() {
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 1,
                    end_step: 4,
                },
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 5,
                },
                FaultEvent::Slowdown {
                    rank: 2,
                    factor: 3.0,
                    start_step: 6,
                    end_step: 9,
                },
                FaultEvent::LoaderSlowdown {
                    factor: 1.5,
                    start_step: 0,
                    end_step: 8,
                },
            ],
        };
        // Rank 1 died; survivors [0, 2] become logical ranks [0, 1].
        let projected = script.for_survivors(&[0, 2]);
        assert_eq!(
            projected.events,
            vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 1,
                    end_step: 4,
                },
                FaultEvent::Slowdown {
                    rank: 1,
                    factor: 3.0,
                    start_step: 6,
                    end_step: 9,
                },
                FaultEvent::LoaderSlowdown {
                    factor: 1.5,
                    start_step: 0,
                    end_step: 8,
                },
            ]
        );
        projected.validate(2).expect("projection stays valid");
        // Projecting a healthy script is a no-op.
        assert!(FaultScript::healthy().for_survivors(&[0]).is_healthy());
    }

    #[test]
    fn for_survivors_drops_joins_already_in_the_member_set() {
        // Compound loss + join: rank 1 dies at step 5, rank 2 joined at
        // step 3. Projected at members [0, 2, 3] (rank 2 is *in*), the
        // join must be dropped — the old remap-by-position behavior
        // re-emitted it as `HostJoin { rank: 1, at_step: 3 }`, re-arming
        // a finished join against a renumbered live rank, so a resumed
        // run replaying from a round < 3 treated logical rank 1 as dead.
        let script = FaultScript {
            events: vec![
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 5,
                },
                FaultEvent::HostJoin {
                    rank: 2,
                    at_step: 3,
                },
            ],
        };
        let projected = script.for_survivors(&[0, 2, 3]);
        assert!(
            !projected
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::HostJoin { .. })),
            "a join for a present member must be dropped, got {projected:?}"
        );
        // The loss rides on dead rank 1 — not in `members` — so it is
        // dropped with the rank, and nothing remains of the script.
        assert!(
            projected.is_healthy(),
            "expected a healthy projection, got {projected:?}"
        );
        // Every projected member is alive at every step ≥ the join step.
        for r in 0..3 {
            assert!(projected.alive(r, 3), "rank {r} armed spuriously");
        }
    }

    #[test]
    fn for_survivors_renumbers_future_joins_to_fresh_ids() {
        // Ranks [0, 2] survive a loss of rank 1; ranks 3 and 4 join
        // later. Future joins must survive the projection under fresh
        // logical ids members.len().. in (at_step, rank) order, and the
        // slowdown scheduled on a future member follows it.
        let script = FaultScript {
            events: vec![
                FaultEvent::HostJoin {
                    rank: 4,
                    at_step: 6,
                },
                FaultEvent::HostJoin {
                    rank: 3,
                    at_step: 4,
                },
                FaultEvent::Slowdown {
                    rank: 3,
                    factor: 2.0,
                    start_step: 5,
                    end_step: 7,
                },
            ],
        };
        let projected = script.for_survivors(&[0, 2]);
        assert_eq!(
            projected.events,
            vec![
                FaultEvent::HostJoin {
                    rank: 3,
                    at_step: 6,
                },
                FaultEvent::HostJoin {
                    rank: 2,
                    at_step: 4,
                },
                FaultEvent::Slowdown {
                    rank: 2,
                    factor: 2.0,
                    start_step: 5,
                    end_step: 7,
                },
            ]
        );
        assert_eq!(projected.pending_joins(2), vec![(2, 4), (3, 6)]);
        assert!(script.pending_joins(5).is_empty());
    }

    #[test]
    fn slowdown_scales_copy_engine_but_not_loader() {
        let mut g = TaskGraph::new(1);
        g.add_tagged(Loader, TaskKind::Load, ns(40), vec![], None, 0);
        g.add_tagged(Copy(0), TaskKind::Comm, ns(10), vec![], None, 0);
        let script = FaultScript {
            events: vec![FaultEvent::Slowdown {
                rank: 0,
                factor: 3.0,
                start_step: 0,
                end_step: 1,
            }],
        };
        let fsr = simulate_faulted(&g, &script).unwrap();
        let durs: Vec<u64> = fsr.graph.iter().map(|(_, t)| t.duration.as_ns()).collect();
        assert_eq!(durs, vec![40, 30], "copy scaled 3x, loader untouched");
    }

    #[test]
    fn loader_slowdown_scales_only_the_pool() {
        let g = two_rank_graph(2);
        let script = FaultScript {
            events: vec![FaultEvent::LoaderSlowdown {
                factor: 2.0,
                start_step: 0,
                end_step: 1,
            }],
        };
        let fsr = simulate_faulted(&g, &script).unwrap();
        let loads: Vec<u64> = fsr
            .graph
            .iter()
            .filter(|(_, t)| t.resource == Loader)
            .map(|(_, t)| t.duration.as_ns())
            .collect();
        assert_eq!(loads, vec![80, 40]);
        assert_eq!(gpu_duration(&fsr, 0, 0), 100);
    }

    #[test]
    fn host_loss_after_the_last_step_is_clean() {
        let g = two_rank_graph(3);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 1,
                at_step: 3,
            }],
        };
        let fsr = simulate_faulted(&g, &script).unwrap();
        // All of rank 1's tasks (Gpu stream, 3 steps) completed pre-loss.
        assert_eq!(fsr.records[0].tasks_affected, 3);
    }

    #[test]
    fn host_loss_mid_schedule_is_a_violation() {
        let g = two_rank_graph(5);
        let script = FaultScript {
            events: vec![FaultEvent::HostLoss {
                rank: 1,
                at_step: 2,
            }],
        };
        let err = simulate_faulted(&g, &script).unwrap_err();
        assert_eq!(err, FaultViolation::TaskOnDeadRank { rank: 1, step: 2 });
    }

    #[test]
    fn host_join_rejects_earlier_tasks() {
        let g = two_rank_graph(3);
        let script = FaultScript {
            events: vec![FaultEvent::HostJoin {
                rank: 1,
                at_step: 1,
            }],
        };
        let err = simulate_faulted(&g, &script).unwrap_err();
        assert_eq!(err, FaultViolation::TaskBeforeJoin { rank: 1, step: 0 });
        assert!(!script.alive(1, 0));
        assert!(script.alive(1, 1));
    }

    #[test]
    fn records_match_the_injected_script_exactly() {
        let g = two_rank_graph(4);
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 1,
                    end_step: 3,
                },
                FaultEvent::LoaderSlowdown {
                    factor: 1.5,
                    start_step: 0,
                    end_step: 2,
                },
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 4,
                },
            ],
        };
        let fsr = simulate_faulted(&g, &script).unwrap();
        assert_eq!(fsr.records.len(), script.events.len());
        for (record, event) in fsr.records.iter().zip(&script.events) {
            assert_eq!(&record.event, event, "records echo events in order");
        }
        // Rank 0 has one Gpu task per step, steps 1..3 → 2 tasks.
        assert_eq!(fsr.records[0].tasks_affected, 2);
        // Loader tasks at steps 0..2 → 2 tasks.
        assert_eq!(fsr.records[1].tasks_affected, 2);
        // Rank 1's 4 tasks all precede the loss.
        assert_eq!(fsr.records[2].tasks_affected, 4);
    }

    #[test]
    fn makespan_is_monotone_in_slowdown_factor() {
        let g = two_rank_graph(6);
        let mut prev = SimTime::ZERO;
        for factor in [1.0, 1.25, 2.0, 3.0, 5.0] {
            let script = FaultScript {
                events: vec![FaultEvent::Slowdown {
                    rank: 0,
                    factor,
                    start_step: 0,
                    end_step: 6,
                }],
            };
            let fsr = simulate_faulted(&g, &script).unwrap();
            assert!(fsr.run.makespan >= prev, "factor {factor}");
            prev = fsr.run.makespan;
        }
    }

    #[test]
    fn change_steps_are_sorted_and_deduplicated() {
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 0,
                    factor: 2.0,
                    start_step: 4,
                    end_step: 8,
                },
                FaultEvent::HostLoss {
                    rank: 1,
                    at_step: 4,
                },
                FaultEvent::LoaderSlowdown {
                    factor: 1.5,
                    start_step: 2,
                    end_step: 8,
                },
            ],
        };
        assert_eq!(script.change_steps(), vec![2, 4, 8]);
        assert_eq!(script.settled_step(), 8);
        assert_eq!(FaultScript::healthy().settled_step(), 0);
    }

    #[test]
    fn validation_rejects_malformed_events() {
        let cases = [
            FaultEvent::Slowdown {
                rank: 9,
                factor: 2.0,
                start_step: 0,
                end_step: 1,
            },
            FaultEvent::Slowdown {
                rank: 0,
                factor: 0.5,
                start_step: 0,
                end_step: 1,
            },
            FaultEvent::Slowdown {
                rank: 0,
                factor: 2.0,
                start_step: 3,
                end_step: 3,
            },
            FaultEvent::LoaderSlowdown {
                factor: f64::NAN,
                start_step: 0,
                end_step: 1,
            },
            FaultEvent::HostLoss {
                rank: 2,
                at_step: 0,
            },
        ];
        for event in cases {
            let script = FaultScript {
                events: vec![event.clone()],
            };
            assert!(
                matches!(script.validate(2), Err(FaultViolation::InvalidScript(_))),
                "{event:?} should be rejected"
            );
        }
        assert!(FaultScript::healthy().validate(2).is_ok());
    }

    #[test]
    fn scripts_roundtrip_through_serde() {
        let script = FaultScript {
            events: vec![
                FaultEvent::Slowdown {
                    rank: 1,
                    factor: 2.5,
                    start_step: 3,
                    end_step: 9,
                },
                FaultEvent::HostJoin {
                    rank: 3,
                    at_step: 5,
                },
            ],
        };
        let json = pipebd_json::to_string(&script).expect("serialize");
        let back: FaultScript = pipebd_json::from_str(&json).expect("deserialize");
        assert_eq!(back, script);
    }
}
