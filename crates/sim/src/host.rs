//! Host-side data-loading model.
//!
//! Decoding and augmenting training samples runs on a *shared* CPU worker
//! pool — the paper's point about "extra data loading" is precisely that
//! the pool is system-wide, so loading the dataset once per block (as the
//! DP baseline does) multiplies pressure on it. The pool appears in the
//! task graph as a single FIFO resource; every batch-load task queues
//! there, so contention emerges naturally.
//!
//! Each consuming device additionally pays a small non-overlappable
//! per-batch cost (collate + host-to-device copy), mirroring the main-
//! process work of a PyTorch `DataLoader` loop.

use serde::{Deserialize, Serialize};

use crate::interconnect::PcieModel;
use crate::time::SimTime;

/// Host CPU / loader-pool parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostModel {
    /// CPU description, e.g. `"EPYC 7302"`.
    pub name: String,
    /// Number of loader worker cores.
    pub workers: usize,
    /// Non-overlappable per-sample cost on the consuming process
    /// (collate/pinning), in microseconds.
    pub collate_us_per_sample: f64,
}

impl HostModel {
    /// 1× AMD EPYC 7302 (16 cores) — the A6000 server's host.
    pub fn epyc7302() -> Self {
        HostModel {
            name: "EPYC 7302".into(),
            workers: 16,
            collate_us_per_sample: 18.0,
        }
    }

    /// 2× Intel Xeon Silver 4214 (2×12 cores) — the 2080 Ti server's host.
    pub fn xeon4214_dual() -> Self {
        HostModel {
            name: "2x Xeon Silver 4214".into(),
            workers: 24,
            collate_us_per_sample: 22.0,
        }
    }

    /// Worker-pool service time for decoding one batch of `samples` with a
    /// per-sample decode cost of `decode_us` (the pool parallelizes across
    /// `workers`).
    pub fn decode_time(&self, samples: usize, decode_us: f64) -> SimTime {
        SimTime::from_us(samples as f64 * decode_us / self.workers.max(1) as f64)
    }

    /// Non-overlappable consumer-side cost for one batch: collate plus the
    /// host-to-device copy of the batch tensor.
    pub fn consume_time(&self, samples: usize, batch_bytes: u64, pcie: &PcieModel) -> SimTime {
        SimTime::from_us(samples as f64 * self.collate_us_per_sample)
            + pcie.transfer_time(batch_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_parallelizes_over_workers() {
        let h = HostModel::epyc7302();
        let one = h.decode_time(160, 100.0);
        // 160 samples * 100us / 16 workers = 1ms.
        assert_eq!(one, SimTime::from_us(1000.0));
    }

    #[test]
    fn consume_cost_scales_with_batch() {
        let h = HostModel::epyc7302();
        let p = PcieModel::gen4_x16();
        let small = h.consume_time(64, 64 * 12_288, &p);
        let large = h.consume_time(256, 256 * 12_288, &p);
        assert!(large > small);
    }

    #[test]
    fn dual_xeon_has_more_workers() {
        assert!(HostModel::xeon4214_dual().workers > HostModel::epyc7302().workers);
    }
}
