//! Property-based tests for the event engine: dependency and resource
//! exclusivity invariants hold for arbitrary random task graphs.

use pipebd_sim::{simulate, Resource, SimTime, TaskGraph, TaskId, TaskKind};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandTask {
    gpu: usize,
    copy_stream: bool,
    dur_ns: u64,
    /// Dependencies as back-offsets from this task's index.
    dep_offsets: Vec<usize>,
}

fn rand_tasks(max: usize) -> impl Strategy<Value = Vec<RandTask>> {
    proptest::collection::vec(
        (
            0usize..3,
            any::<bool>(),
            0u64..1000,
            proptest::collection::vec(1usize..8, 0..3),
        )
            .prop_map(|(gpu, copy_stream, dur_ns, dep_offsets)| RandTask {
                gpu,
                copy_stream,
                dur_ns,
                dep_offsets,
            }),
        1..max,
    )
}

fn build(tasks: &[RandTask]) -> TaskGraph {
    let mut g = TaskGraph::new(3);
    let mut ids: Vec<TaskId> = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let deps: Vec<TaskId> = t
            .dep_offsets
            .iter()
            .filter_map(|&off| i.checked_sub(off).map(|j| ids[j]))
            .collect();
        let resource = if t.copy_stream {
            Resource::Copy(t.gpu)
        } else {
            Resource::Gpu(t.gpu)
        };
        ids.push(g.add(
            resource,
            TaskKind::Teacher,
            SimTime::from_ns(t.dur_ns),
            deps,
        ));
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn starts_respect_dependencies(tasks in rand_tasks(40)) {
        let g = build(&tasks);
        let run = simulate(&g);
        for (id, task) in g.iter() {
            for d in &task.deps {
                prop_assert!(
                    run.start[id.index()] >= run.finish[d.index()],
                    "task {} started before dep {} finished",
                    id.index(),
                    d.index()
                );
            }
        }
    }

    #[test]
    fn resources_never_overlap(tasks in rand_tasks(40)) {
        let g = build(&tasks);
        let run = simulate(&g);
        // Group intervals per resource and check pairwise disjointness.
        let mut by_resource: std::collections::HashMap<String, Vec<(u64, u64)>> =
            std::collections::HashMap::new();
        for (id, task) in g.iter() {
            by_resource
                .entry(format!("{:?}", task.resource))
                .or_default()
                .push((run.start[id.index()].as_ns(), run.finish[id.index()].as_ns()));
        }
        for intervals in by_resource.values_mut() {
            intervals.sort_unstable();
            for w in intervals.windows(2) {
                prop_assert!(w[0].1 <= w[1].0, "overlap: {:?}", w);
            }
        }
    }

    #[test]
    fn makespan_is_max_finish(tasks in rand_tasks(40)) {
        let g = build(&tasks);
        let run = simulate(&g);
        let max = run.finish.iter().copied().max().unwrap_or(SimTime::ZERO);
        prop_assert_eq!(run.makespan, max);
    }

    #[test]
    fn appending_tasks_never_changes_history(tasks in rand_tasks(30), extra in rand_tasks(8)) {
        let g1 = build(&tasks);
        let run1 = simulate(&g1);
        let mut combined = tasks.clone();
        combined.extend(extra);
        let g2 = build(&combined);
        let run2 = simulate(&g2);
        for i in 0..tasks.len() {
            prop_assert_eq!(run1.start[i], run2.start[i]);
            prop_assert_eq!(run1.finish[i], run2.finish[i]);
        }
    }

    #[test]
    fn zero_duration_tasks_are_instant(gpu in 0usize..3) {
        let mut g = TaskGraph::new(3);
        let a = g.add(Resource::Gpu(gpu), TaskKind::Teacher, SimTime::from_ns(100), vec![]);
        let sync = g.add(Resource::Gpu(gpu), TaskKind::Sync, SimTime::ZERO, vec![a]);
        let run = simulate(&g);
        prop_assert_eq!(run.start_of(sync), run.finish_of(sync));
        prop_assert_eq!(run.start_of(sync), run.finish_of(a));
    }
}
