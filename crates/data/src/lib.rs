//! Synthetic datasets for the functional engine.
//!
//! The paper trains on CIFAR-10 and ImageNet, which we do not have. For
//! the *timing* experiments only the loading profile matters (see
//! [`pipebd_models::DatasetSpec`]). For the *functional* experiments —
//! demonstrating that Pipe-BD scheduling leaves training results unchanged
//! — any deterministic input distribution exercises the identical code
//! path, so this crate generates procedural images: each class has a
//! parametric spatial pattern, perturbed with seeded noise.
//!
//! # Example
//!
//! ```
//! use pipebd_data::SyntheticImageDataset;
//!
//! let ds = SyntheticImageDataset::mini(64, 8, 4, 7);
//! let (images, labels) = ds.batch(0, 16);
//! assert_eq!(images.dims(), &[16, 3, 8, 8]);
//! assert_eq!(labels.len(), 16);
//! // Deterministic: the same batch is bit-identical on every call.
//! assert_eq!(images.data(), ds.batch(0, 16).0.data());
//! ```

#![warn(missing_docs)]

use pipebd_models::DatasetSpec;
use pipebd_tensor::{Rng64, Tensor};

/// A deterministic, procedurally generated image-classification dataset.
///
/// Sample `i` is a function of `(seed, i)` only — no global state — so any
/// device/thread can materialize any subset of the data independently, the
/// way a distributed loader shards a dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticImageDataset {
    spec: DatasetSpec,
    seed: u64,
}

impl SyntheticImageDataset {
    /// Wraps a dataset descriptor with a generation seed.
    pub fn new(spec: DatasetSpec, seed: u64) -> Self {
        SyntheticImageDataset { spec, seed }
    }

    /// A small dataset for tests: `samples` images of `3×side×side` over
    /// `classes` classes.
    pub fn mini(samples: u64, side: usize, classes: usize, seed: u64) -> Self {
        SyntheticImageDataset::new(DatasetSpec::mini(samples, side, classes), seed)
    }

    /// The dataset descriptor (loading profile).
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// Number of samples.
    pub fn len(&self) -> u64 {
        self.spec.train_samples
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.spec.train_samples == 0
    }

    /// The label of sample `index`.
    pub fn label(&self, index: u64) -> usize {
        // Stable pseudo-random class assignment.
        let mut rng = Rng64::seed_from_u64(self.seed ^ index.wrapping_mul(0x9E37_79B9));
        rng.below(self.spec.classes.max(1))
    }

    /// Materializes sample `index` as a `[3, h, w]` tensor.
    pub fn sample(&self, index: u64) -> Tensor {
        let shape = self.spec.sample_shape;
        let class = self.label(index) as f32;
        let mut rng = Rng64::seed_from_u64(self.seed ^ index.rotate_left(17));
        let mut data = Vec::with_capacity(shape.elems() as usize);
        let (h, w) = (shape.h as f32, shape.w as f32);
        for c in 0..shape.c {
            let phase = class * 0.7 + c as f32 * 1.3;
            for y in 0..shape.h {
                for x in 0..shape.w {
                    // Class-dependent smooth pattern + seeded noise.
                    let fy = y as f32 / h;
                    let fx = x as f32 / w;
                    let pattern = ((fx * (2.0 + class) * std::f32::consts::PI) + phase).sin()
                        * ((fy * (1.0 + class)) * std::f32::consts::PI).cos();
                    data.push(0.5 * pattern + 0.1 * rng.normal());
                }
            }
        }
        Tensor::from_vec(data, &[shape.c, shape.h, shape.w]).expect("shape math is consistent")
    }

    /// Materializes a batch starting at `start` (wrapping around the end),
    /// returning `[n, 3, h, w]` images and their labels.
    pub fn batch(&self, start: u64, n: usize) -> (Tensor, Vec<usize>) {
        let shape = self.spec.sample_shape;
        let per = shape.elems() as usize;
        let mut data = Vec::with_capacity(n * per);
        let mut labels = Vec::with_capacity(n);
        for k in 0..n {
            let idx = (start + k as u64) % self.len().max(1);
            data.extend_from_slice(self.sample(idx).data());
            labels.push(self.label(idx));
        }
        let images = Tensor::from_vec(data, &[n, shape.c, shape.h, shape.w])
            .expect("batch shape is consistent");
        (images, labels)
    }
}

/// Iterates deterministic batches across an epoch.
#[derive(Debug, Clone)]
pub struct EpochBatches<'a> {
    dataset: &'a SyntheticImageDataset,
    batch: usize,
    cursor: u64,
    remaining_steps: u64,
}

impl<'a> EpochBatches<'a> {
    /// Creates an iterator over one epoch at a batch size (drop-last).
    pub fn new(dataset: &'a SyntheticImageDataset, batch: usize) -> Self {
        EpochBatches {
            dataset,
            batch,
            cursor: 0,
            remaining_steps: dataset.spec().steps_per_epoch(batch),
        }
    }
}

impl Iterator for EpochBatches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining_steps == 0 {
            return None;
        }
        let out = self.dataset.batch(self.cursor, self.batch);
        self.cursor += self.batch as u64;
        self.remaining_steps -= 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let ds = SyntheticImageDataset::mini(32, 8, 4, 1);
        assert_eq!(ds.sample(5), ds.sample(5));
        assert_eq!(ds.label(5), ds.label(5));
    }

    #[test]
    fn different_indices_differ() {
        let ds = SyntheticImageDataset::mini(32, 8, 4, 1);
        assert_ne!(ds.sample(0), ds.sample(1));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SyntheticImageDataset::mini(32, 8, 4, 1);
        let b = SyntheticImageDataset::mini(32, 8, 4, 2);
        assert_ne!(a.sample(0), b.sample(0));
    }

    #[test]
    fn labels_cover_classes() {
        let ds = SyntheticImageDataset::mini(256, 8, 4, 3);
        let mut seen = [false; 4];
        for i in 0..256 {
            seen[ds.label(i)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn batch_wraps_around() {
        let ds = SyntheticImageDataset::mini(10, 8, 2, 4);
        let (images, labels) = ds.batch(8, 4); // indices 8,9,0,1
        assert_eq!(images.dims(), &[4, 3, 8, 8]);
        assert_eq!(labels[2], ds.label(0));
        assert_eq!(labels[3], ds.label(1));
    }

    #[test]
    fn epoch_iterator_yields_steps_per_epoch() {
        let ds = SyntheticImageDataset::mini(100, 8, 2, 5);
        let batches: Vec<_> = EpochBatches::new(&ds, 32).collect();
        assert_eq!(batches.len(), 3); // 100/32 drop-last
        assert_eq!(batches[0].0.dims()[0], 32);
    }

    #[test]
    fn batch_equals_concatenated_samples() {
        let ds = SyntheticImageDataset::mini(16, 8, 3, 6);
        let (images, _) = ds.batch(2, 2);
        let s2 = ds.sample(2);
        let s3 = ds.sample(3);
        assert_eq!(&images.data()[..s2.numel()], s2.data());
        assert_eq!(&images.data()[s2.numel()..], s3.data());
    }

    #[test]
    fn values_are_bounded() {
        let ds = SyntheticImageDataset::mini(8, 16, 10, 7);
        let (images, _) = ds.batch(0, 8);
        assert!(images.data().iter().all(|v| v.abs() < 3.0));
    }
}
