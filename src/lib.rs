//! # Pipe-BD: pipelined parallel blockwise distillation
//!
//! Umbrella crate for the Rust reproduction of *"Pipe-BD: Pipelined Parallel
//! Blockwise Distillation"* (DATE 2023). It re-exports the public API of the
//! workspace crates so downstream users can depend on a single crate:
//!
//! * [`tensor`] — minimal CPU tensor library with explicit adjoint kernels.
//! * [`nn`] — layers, blocks, losses, and optimizers for blockwise
//!   distillation.
//! * [`models`] — MobileNetV2 / ProxylessNAS / VGG-16 / DS-Conv descriptors
//!   and mini executable versions.
//! * [`sim`] — discrete-event simulator of a single-node multi-GPU server.
//! * [`sched`] — stage plans, profiling, and the AHD plan search.
//! * [`data`] — dataset descriptors and synthetic datasets.
//! * [`core`] — the Pipe-BD strategies, simulator lowering, threaded
//!   functional executor, and the [`core::Experiment`] facade.
//! * [`json`] — the JSON backend (parser, `Value` tree, renderers, serde
//!   bridge) behind the artifact plane.
//! * [`artifact`] — the persistent artifact store: schema-tagged run
//!   reports, schedules, profiles, and bench baselines under
//!   `target/artifacts/`.
//! * [`testkit`] — the conformance plane: deterministic scenario
//!   enumeration and the differential harness cross-checking the
//!   executors, the simulator, and the analytic estimator.
//!
//! # Quickstart
//!
//! ```
//! use pipe_bd::core::{ExperimentBuilder, Strategy};
//! use pipe_bd::sim::HardwareConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let experiment = ExperimentBuilder::nas_cifar10()
//!     .devices(4)
//!     .batch_size(256)
//!     .hardware(HardwareConfig::a6000_server(4))
//!     .build()?;
//! let dp = experiment.run(Strategy::DataParallel)?;
//! let pipebd = experiment.run(Strategy::PipeBd)?;
//! assert!(pipebd.epoch_time_s() < dp.epoch_time_s());
//! # Ok(())
//! # }
//! ```

pub use pipebd_artifact as artifact;
pub use pipebd_core as core;
pub use pipebd_data as data;
pub use pipebd_json as json;
pub use pipebd_models as models;
pub use pipebd_nn as nn;
pub use pipebd_sched as sched;
pub use pipebd_sim as sim;
pub use pipebd_tensor as tensor;
pub use pipebd_testkit as testkit;
