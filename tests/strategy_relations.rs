//! Cross-crate integration: the paper's headline performance relations,
//! measured end-to-end through the public API (profile → AHD → lower →
//! simulate → report).

use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::models::Workload;
use pipe_bd::sim::HardwareConfig;

fn experiment(w: Workload) -> pipe_bd::core::Experiment {
    ExperimentBuilder::new(w)
        .hardware(HardwareConfig::a6000_server(4))
        .batch_size(256)
        .sim_rounds(16)
        .build()
        .expect("valid experiment")
}

#[test]
fn pipe_bd_is_fastest_on_every_paper_workload() {
    for w in [
        Workload::nas_cifar10(),
        Workload::nas_imagenet(),
        Workload::compression_cifar10(),
        Workload::compression_imagenet(),
    ] {
        let label = w.label();
        let e = experiment(w);
        let pb = e.run(Strategy::PipeBd).expect("Pipe-BD lowers");
        for s in Strategy::ALL {
            if s == Strategy::PipeBd {
                continue;
            }
            if let Ok(r) = e.run(s) {
                assert!(
                    pb.epoch_time_s() <= r.epoch_time_s() * 1.001,
                    "{label}: Pipe-BD {:.2}s slower than {s} {:.2}s",
                    pb.epoch_time_s(),
                    r.epoch_time_s()
                );
            }
        }
    }
}

#[test]
fn paper_speedup_bands_hold() {
    // The paper reports 2.37x-7.38x over the baselines across scenarios;
    // our reproduction must land in a compatible band for DP.
    for (w, lo, hi) in [
        (Workload::nas_cifar10(), 2.0, 4.5),
        (Workload::nas_imagenet(), 3.0, 6.0),
        (Workload::compression_cifar10(), 5.5, 11.0),
        (Workload::compression_imagenet(), 3.0, 6.5),
    ] {
        let label = w.label();
        let e = experiment(w);
        let dp = e.run(Strategy::DataParallel).expect("DP");
        let pb = e.run(Strategy::PipeBd).expect("Pipe-BD");
        let x = pb.speedup_over(&dp);
        assert!(
            (lo..hi).contains(&x),
            "{label}: speedup {x:.2}x outside [{lo}, {hi})"
        );
    }
}

#[test]
fn ablation_order_tr_dpu_ahd_monotone_on_compression() {
    // Fig. 4b: each Pipe-BD component helps on the compression workloads.
    for w in [
        Workload::compression_cifar10(),
        Workload::compression_imagenet(),
    ] {
        let label = w.label();
        let e = experiment(w);
        let tr = e.run(Strategy::TeacherRelaying).expect("TR").epoch_time_s();
        let dpu = e.run(Strategy::TrDpu).expect("TR+DPU").epoch_time_s();
        let ahd = e.run(Strategy::PipeBd).expect("full").epoch_time_s();
        assert!(dpu < tr, "{label}: DPU must improve on TR");
        assert!(ahd < dpu, "{label}: AHD must improve on TR+DPU");
    }
}

#[test]
fn dpu_gains_little_on_imagenet_nas_but_ahd_gains_much() {
    // Section VII-A: "with TR only, block 0 dominates ... DPU has little
    // room for improvement, whereas splitting the first block with AHD has
    // a large impact."
    let e = experiment(Workload::nas_imagenet());
    let tr = e.run(Strategy::TeacherRelaying).expect("TR").epoch_time_s();
    let dpu = e.run(Strategy::TrDpu).expect("DPU").epoch_time_s();
    let ahd = e.run(Strategy::PipeBd).expect("AHD").epoch_time_s();
    let dpu_gain = tr / dpu;
    let ahd_gain = dpu / ahd;
    assert!(dpu_gain < 1.15, "DPU gain should be small: {dpu_gain:.2}x");
    assert!(ahd_gain > 1.5, "AHD gain should be large: {ahd_gain:.2}x");
}

#[test]
fn fig5_a6000_schedule_matches_paper() {
    // Fig. 5c: on the A6000, AHD shares the first three blocks on three
    // devices and gives the last three to the fourth device.
    let e = experiment(Workload::nas_imagenet());
    let d = e.ahd_decision();
    assert_eq!(format!("{}", d.plan), "b0..2@gpu0..2 | b3..5@gpu3..3");
}

#[test]
fn memory_shapes_match_fig7() {
    let e = experiment(Workload::nas_imagenet());
    let dp = e.run(Strategy::DataParallel).expect("DP");
    let tr = e.run(Strategy::TrDpu).expect("TR+DPU");
    let pb = e.run(Strategy::PipeBd).expect("Pipe-BD");
    // DP flat; TR peaks on rank 0; AHD flattens it; overall overhead mild.
    assert!(dp
        .memory_per_rank
        .iter()
        .all(|&m| m == dp.memory_per_rank[0]));
    assert!(tr.memory_per_rank[0] > 2 * tr.memory_per_rank[3]);
    assert!(pb.memory_per_rank[0] < tr.memory_per_rank[0]);
    let overhead = pb.memory_overhead_over(&dp);
    assert!(
        (0.0..0.6).contains(&overhead),
        "Pipe-BD memory overhead {overhead:.2} should be modest"
    );
}

#[test]
fn batch_sensitivity_trends_match_fig6() {
    // CIFAR: Pipe-BD speedup decreases with batch; ImageNet AHD increases.
    let speedup = |w: Workload, batch: usize| {
        let e = ExperimentBuilder::new(w)
            .hardware(HardwareConfig::a6000_server(4))
            .batch_size(batch)
            .sim_rounds(8)
            .build()
            .expect("valid");
        let dp = e.run(Strategy::DataParallel).expect("DP");
        let pb = e.run(Strategy::PipeBd).expect("PB");
        pb.speedup_over(&dp)
    };
    assert!(speedup(Workload::nas_cifar10(), 128) > speedup(Workload::nas_cifar10(), 512));
    assert!(speedup(Workload::nas_imagenet(), 512) > speedup(Workload::nas_imagenet(), 128));
}

#[test]
fn two_gpu_types_both_accelerate() {
    // Fig. 5a: similar speedup trends on both servers.
    for hw in [
        HardwareConfig::a6000_server(4),
        HardwareConfig::rtx2080ti_server(4),
    ] {
        let label = hw.label();
        let e = ExperimentBuilder::nas_imagenet()
            .hardware(hw)
            .sim_rounds(8)
            .build()
            .expect("valid");
        let dp = e.run(Strategy::DataParallel).expect("DP");
        let pb = e.run(Strategy::PipeBd).expect("PB");
        assert!(
            pb.speedup_over(&dp) > 1.8,
            "{label}: Pipe-BD should clearly win, got {:.2}x",
            pb.speedup_over(&dp)
        );
    }
}
