//! Cross-crate integration: the AHD search's analytic period estimator
//! must agree with the event-level simulator — otherwise the plan the
//! search picks would not be the plan the (simulated) hardware rewards.
//! This mirrors the real Pipe-BD design, where profiling feeds the search
//! and the schedule then runs on the profiled devices.

use pipe_bd::core::lower::{relay, Lowering};
use pipe_bd::models::Workload;
use pipe_bd::sched::{enumerate_hybrid_plans, estimate_period, CostModel, Profiler};
use pipe_bd::sim::HardwareConfig;

#[test]
fn estimates_track_simulation_across_the_plan_space() {
    let w = Workload::nas_cifar10();
    let hw = HardwareConfig::a6000_server(4);
    let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
    let lowering = Lowering::new(&w, &hw, 256, 24);

    let mut checked = 0;
    for plan in enumerate_hybrid_plans(6, 4) {
        // Sample the space: every 7th plan keeps the test fast while still
        // covering 1..4-stage shapes.
        if checked % 7 != 0 {
            checked += 1;
            continue;
        }
        checked += 1;
        let analytic = estimate_period(&plan, &table, &w, &hw, 256).as_secs_f64();
        let simulated = relay::simulated_period(&lowering, &plan, true, 8).as_secs_f64();
        let ratio = simulated / analytic;
        assert!(
            (0.85..1.25).contains(&ratio),
            "plan {plan}: simulated {simulated:.6}s vs analytic {analytic:.6}s (ratio {ratio:.3})"
        );
    }
    assert!(checked > 10, "space should be non-trivial");
}

#[test]
fn chosen_plan_is_near_optimal_under_simulation() {
    // Simulate every plan and verify the AHD choice is within a few
    // percent of the simulated optimum (it need not be exactly optimal —
    // the estimator ignores relay latencies — but it must be close).
    let w = Workload::nas_imagenet();
    let hw = HardwareConfig::a6000_server(4);
    let table = Profiler::new(CostModel::new(hw.gpu.clone())).profile(&w.model, 256, 4);
    let decision = pipe_bd::sched::ahd::search(&w, &table, &hw, 256);
    let lowering = Lowering::new(&w, &hw, 256, 16);

    let mut best_simulated = f64::INFINITY;
    for plan in enumerate_hybrid_plans(6, 4) {
        let p = relay::simulated_period(&lowering, &plan, true, 6).as_secs_f64();
        best_simulated = best_simulated.min(p);
    }
    let chosen = relay::simulated_period(&lowering, &decision.plan, true, 6).as_secs_f64();
    assert!(
        chosen <= best_simulated * 1.10,
        "chosen plan {:.6}s is >10% off the simulated optimum {best_simulated:.6}s",
        chosen
    );
}
