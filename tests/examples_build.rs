//! Smoke test: every example must keep compiling.
//!
//! `cargo test` builds examples as a side effect, but only for the
//! default feature set of this package; this test pins the guarantee
//! explicitly (and fails with cargo's own diagnostics) so a refactor
//! that breaks `examples/` cannot slip through a targeted test run.

use std::path::Path;
use std::process::Command;

/// The examples shipped with the umbrella crate; update when adding one.
const EXAMPLES: [&str; 5] = [
    "compression_vgg",
    "heterogeneous",
    "nas_search",
    "quickstart",
    "schedule_explorer",
];

#[test]
fn all_examples_compile() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for name in EXAMPLES {
        let path = Path::new(manifest_dir).join(format!("examples/{name}.rs"));
        assert!(path.is_file(), "example source missing: {}", path.display());
    }

    let cargo = env!("CARGO");
    let status = Command::new(cargo)
        .args(["build", "--examples"])
        .current_dir(manifest_dir)
        .status()
        .expect("failed to spawn cargo");
    assert!(status.success(), "`cargo build --examples` failed");
}
