//! End-to-end integration: the full model-compression story on real
//! (miniature) networks — train a teacher classifier, blockwise-distill a
//! supernet student under the threaded Pipe-BD executor, reattach the
//! classifier head, and verify the student inherits the teacher's
//! accuracy. This is the paper's use case executed for real, not
//! simulated.
//!
//! The scenario runs at two budgets: a slimmed default that keeps the
//! tier-1 suite fast, and the original long-tail workload behind
//! `#[ignore]` (run it with `cargo test -- --ignored`, or everything at
//! once with `cargo test -- --include-ignored`).

use pipe_bd::core::exec::{threaded, FuncConfig};
use pipe_bd::data::SyntheticImageDataset;
use pipe_bd::models::{mini_student_supernet, mini_teacher, MiniConfig};
use pipe_bd::nn::{
    accuracy, cross_entropy_loss, BlockNet, GlobalAvgPool, Layer, Linear, Mode, Sequential, Sgd,
};
use pipe_bd::tensor::{Rng64, Tensor};

const CLASSES: usize = 4;

struct Classifier {
    head: Sequential,
}

impl Classifier {
    fn new(channels: usize, rng: &mut Rng64) -> Self {
        Classifier {
            head: Sequential::new(vec![
                Box::new(GlobalAvgPool::new()),
                Box::new(Linear::new(channels, CLASSES, rng)),
            ]),
        }
    }

    fn logits(&mut self, features: &Tensor, mode: Mode) -> Tensor {
        self.head.forward(features, mode).expect("head forward")
    }
}

fn features(net: &mut BlockNet, x: &Tensor) -> Tensor {
    net.forward_range(x, 0, net.num_blocks(), Mode::Eval)
        .expect("feature forward")
}

fn eval_accuracy(
    net: &mut BlockNet,
    head: &mut Classifier,
    data: &SyntheticImageDataset,
    samples: usize,
) -> f32 {
    let (x, labels) = data.batch(0, samples);
    let logits = head.logits(&features(net, &x), Mode::Eval);
    accuracy(&logits, &labels).expect("accuracy")
}

/// Step budgets for the scenario (everything else — models, seeds, data —
/// is identical across budgets).
struct Budget {
    teacher_steps: u64,
    distill_steps: usize,
    finetune_steps: u64,
}

/// Slimmed default: the smallest budget at which every assertion still
/// holds with margin, keeping the tier-1 wall-clock low.
const QUICK: Budget = Budget {
    teacher_steps: 48,
    distill_steps: 120,
    finetune_steps: 60,
};

/// The original paper-shaped workload (~90 s in a debug build).
const FULL: Budget = Budget {
    teacher_steps: 80,
    distill_steps: 250,
    finetune_steps: 100,
};

#[test]
fn student_inherits_teacher_accuracy_through_pipe_bd_distillation() {
    run_scenario(&QUICK);
}

#[test]
#[ignore = "long tail (~90 s in debug); run with `cargo test -- --ignored`"]
fn student_inherits_teacher_accuracy_full_workload() {
    run_scenario(&FULL);
}

fn run_scenario(budget: &Budget) {
    let cfg = MiniConfig {
        blocks: 3,
        channels: 8,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(31);
    let mut teacher = mini_teacher(cfg, &mut rng);
    let mut head = Classifier::new(cfg.channels, &mut rng);
    let data = SyntheticImageDataset::mini(256, 8, CLASSES, 77);

    // --- Stage 1: train the teacher end-to-end on classification. ------
    // One optimizer per block: SGD velocity buffers are per-layer.
    let mut backbone_opts: Vec<Sgd> = (0..teacher.num_blocks())
        .map(|_| Sgd::new(0.05, 0.9, 1e-3))
        .collect();
    let mut head_opt = Sgd::new(0.05, 0.9, 1e-3);
    for step in 0..budget.teacher_steps {
        let (x, labels) = data.batch(step * 16, 16);
        let mut act = x.clone();
        for i in 0..teacher.num_blocks() {
            act = teacher
                .block_mut(i)
                .forward(&act, Mode::Train)
                .expect("fwd");
        }
        let logits = head.head.forward(&act, Mode::Train).expect("head");
        let loss = cross_entropy_loss(&logits, &labels).expect("ce");
        let mut grad = head.head.backward(&loss.grad).expect("head bwd");
        for i in (0..teacher.num_blocks()).rev() {
            grad = teacher.block_mut(i).backward(&grad).expect("bwd");
        }
        head_opt.step(&mut head.head).expect("head step");
        for i in 0..teacher.num_blocks() {
            backbone_opts[i].step(teacher.block_mut(i)).expect("step");
        }
    }
    let teacher_acc = eval_accuracy(&mut teacher, &mut head, &data, 128);
    assert!(
        teacher_acc > 0.6,
        "teacher failed to learn: accuracy {teacher_acc}"
    );

    // --- Stage 2: blockwise-distill the student under Pipe-BD. ---------
    // The supernet student contains a dense-conv candidate, so it has
    // enough capacity to match the teacher blocks (the DS-Conv miniature
    // structurally underfits the final block; the paper's full-size
    // students do not have that problem).
    let student = mini_student_supernet(cfg, &mut rng);
    let func = FuncConfig {
        devices: 3,
        steps: budget.distill_steps,
        batch: 12,
        lr: 0.08,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: None,
    };
    let outcome = threaded::run(&teacher, &student, &data, &func).expect("distillation");
    for (i, losses) in outcome.losses.iter().enumerate() {
        assert!(
            losses.last().unwrap() < &(0.5 * losses.first().unwrap()),
            "block {i} distillation did not converge: {} -> {}",
            losses.first().unwrap(),
            losses.last().unwrap()
        );
    }

    // --- Stage 3: rebuild the trained student and reuse the head. -------
    let mut trained_student = mini_student_supernet(cfg, &mut rng);
    for (i, params) in outcome.params.iter().enumerate() {
        let mut idx = 0;
        trained_student.block_mut(i).visit_params(&mut |p| {
            p.value = params[idx].clone();
            idx += 1;
        });
    }

    // --- Stage 4: brief fine-tune, as the paper does after compression
    // (Section VI-B uses a small finetuning learning rate). Blockwise
    // distillation trains each block on *teacher* inputs, so a short
    // end-to-end pass is needed to close the compounding-error gap.
    let mut student_opts: Vec<Sgd> = (0..trained_student.num_blocks())
        .map(|_| Sgd::new(0.01, 0.9, 0.0))
        .collect();
    let mut ft_head_opt = Sgd::new(0.01, 0.9, 0.0);
    for step in 0..budget.finetune_steps {
        let (x, labels) = data.batch(step * 16, 16);
        let mut act = x.clone();
        for i in 0..trained_student.num_blocks() {
            act = trained_student
                .block_mut(i)
                .forward(&act, Mode::Train)
                .expect("ft fwd");
        }
        let logits = head.head.forward(&act, Mode::Train).expect("ft head");
        let loss = cross_entropy_loss(&logits, &labels).expect("ft ce");
        let mut grad = head.head.backward(&loss.grad).expect("ft head bwd");
        for i in (0..trained_student.num_blocks()).rev() {
            grad = trained_student
                .block_mut(i)
                .backward(&grad)
                .expect("ft bwd");
        }
        ft_head_opt.step(&mut head.head).expect("ft head step");
        for i in 0..trained_student.num_blocks() {
            student_opts[i]
                .step(trained_student.block_mut(i))
                .expect("ft step");
        }
    }

    let student_acc = eval_accuracy(&mut trained_student, &mut head, &data, 128);
    assert!(
        student_acc > 0.75 * teacher_acc,
        "student accuracy {student_acc} too far below teacher {teacher_acc}"
    );

    // A fresh (never-distilled) student fine-tuned identically must do
    // worse — the distillation has to be what carried the accuracy.
    let mut fresh = mini_student_supernet(cfg, &mut rng);
    let fresh_acc = eval_accuracy(&mut fresh, &mut head, &data, 128);
    assert!(
        student_acc > fresh_acc + 0.1,
        "distilled {student_acc} vs fresh {fresh_acc}: distillation had no effect"
    );
}
