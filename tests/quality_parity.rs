//! Cross-crate integration: the paper's Section VII-D claim.
//!
//! Pipe-BD only reschedules blockwise distillation; it must never change
//! the trained result. These tests run *real* training — tensors, conv
//! kernels, SGD — under every scheduling strategy on device threads and
//! compare against the scheduling-free sequential definition.

use pipe_bd::core::exec::{reference, threaded, FuncConfig};
use pipe_bd::data::SyntheticImageDataset;
use pipe_bd::models::{mini_student_dsconv, mini_student_supernet, mini_teacher, MiniConfig};
use pipe_bd::nn::BlockNet;
use pipe_bd::sched::StagePlan;
use pipe_bd::tensor::Rng64;

fn setup(blocks: usize, supernet: bool) -> (BlockNet, BlockNet, SyntheticImageDataset) {
    let cfg = MiniConfig {
        blocks,
        channels: 6,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(99);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = if supernet {
        mini_student_supernet(cfg, &mut rng)
    } else {
        mini_student_dsconv(cfg, &mut rng)
    };
    let data = SyntheticImageDataset::mini(128, 8, 4, 17);
    (teacher, student, data)
}

fn base_cfg() -> FuncConfig {
    FuncConfig {
        devices: 4,
        steps: 8,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: None,
    }
}

#[test]
fn teacher_relaying_is_bitwise_faithful() {
    let (teacher, student, data) = setup(4, false);
    let cfg = FuncConfig {
        decoupled_updates: false,
        ..base_cfg()
    };
    let golden = reference::run(&teacher, &student, &data, &cfg).expect("reference");
    let tr = threaded::run(&teacher, &student, &data, &cfg).expect("threaded TR");
    assert_eq!(tr.max_param_diff(&golden), 0.0);
    assert_eq!(tr.losses, golden.losses);
}

#[test]
fn decoupled_update_is_bitwise_faithful() {
    let (teacher, student, data) = setup(4, false);
    let cfg = base_cfg();
    let golden = reference::run(&teacher, &student, &data, &cfg).expect("reference");
    let dpu = threaded::run(&teacher, &student, &data, &cfg).expect("threaded DPU");
    assert_eq!(dpu.max_param_diff(&golden), 0.0);
}

#[test]
fn hybrid_distribution_matches_within_float_reassociation() {
    let (teacher, student, data) = setup(4, false);
    let cfg = FuncConfig {
        plan: Some(StagePlan::from_widths(&[(1, 2), (3, 2)], 4, 4).expect("valid plan")),
        ..base_cfg()
    };
    let golden = reference::run(&teacher, &student, &data, &cfg).expect("reference");
    let hybrid = threaded::run(&teacher, &student, &data, &cfg).expect("threaded hybrid");
    // Gradient averaging reorders float sums; anything beyond that is a bug.
    assert!(hybrid.max_param_diff(&golden) < 1e-4);
}

#[test]
fn internal_relaying_matches_within_float_reassociation() {
    let (teacher, student, data) = setup(4, false);
    let cfg = FuncConfig {
        plan: Some(StagePlan::internal_relaying(4, 4)),
        ..base_cfg()
    };
    let golden = reference::run(&teacher, &student, &data, &cfg).expect("reference");
    let ir = threaded::run(&teacher, &student, &data, &cfg).expect("threaded IR");
    assert!(ir.max_param_diff(&golden) < 1e-4);
}

#[test]
fn nas_supernet_parity_with_arch_params() {
    // The NAS student carries architecture parameters; scheduling must not
    // disturb them either.
    let (teacher, supernet, data) = setup(4, true);
    let cfg = base_cfg();
    let golden = reference::run(&teacher, &supernet, &data, &cfg).expect("reference");
    let dpu = threaded::run(&teacher, &supernet, &data, &cfg).expect("threaded");
    assert_eq!(dpu.max_param_diff(&golden), 0.0);
}

#[test]
fn all_schedules_agree_with_each_other() {
    let (teacher, student, data) = setup(3, false);
    let mut cfg = FuncConfig {
        devices: 3,
        steps: 6,
        batch: 6,
        ..base_cfg()
    };
    let barrier = threaded::run(&teacher, &student, &data, &{
        let mut c = cfg.clone();
        c.decoupled_updates = false;
        c
    })
    .expect("barrier");
    let dpu = threaded::run(&teacher, &student, &data, &cfg).expect("dpu");
    cfg.plan = Some(StagePlan::internal_relaying(3, 3));
    let ir = threaded::run(&teacher, &student, &data, &cfg).expect("ir");
    assert_eq!(dpu.max_param_diff(&barrier), 0.0);
    assert!(ir.max_param_diff(&barrier) < 1e-4);
}

#[test]
fn losses_converge_under_every_schedule() {
    let (teacher, student, data) = setup(4, false);
    for (name, plan, dpu) in [
        ("tr", None, false),
        ("dpu", None, true),
        (
            "hybrid",
            Some(StagePlan::from_widths(&[(2, 2), (2, 2)], 4, 4).expect("valid")),
            true,
        ),
        ("ir", Some(StagePlan::internal_relaying(4, 4)), true),
    ] {
        let cfg = FuncConfig {
            steps: 30,
            plan,
            decoupled_updates: dpu,
            ..base_cfg()
        };
        let out = threaded::run(&teacher, &student, &data, &cfg).expect(name);
        for (i, losses) in out.losses.iter().enumerate() {
            assert!(
                losses.last().unwrap() < losses.first().unwrap(),
                "{name}: block {i} did not converge"
            );
        }
    }
}
