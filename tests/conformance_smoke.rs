//! Umbrella-level smoke of the conformance plane: the `pipe_bd::testkit`
//! re-export enumerates the matrix and one cheap scenario passes end to
//! end. The full sweep lives in `crates/testkit/tests/conformance.rs`
//! and in the `regression_gate` CI lane; this test pins only that the
//! plane is reachable through the public umbrella API.

use pipe_bd::core::ExecutorChoice;
use pipe_bd::testkit::{enumerate, run_scenario, ConformanceStrategy, ToleranceBook};

#[test]
fn conformance_plane_is_wired_through_the_umbrella() {
    let all = enumerate();
    assert!(all.len() >= 60, "matrix shrank to {}", all.len());

    let ambient = pipe_bd::tensor::kernel_policy().to_string();
    let scenario = all
        .iter()
        .find(|s| {
            s.blocks == 3
                && s.ranks == 2
                && s.strategy == ConformanceStrategy::TrIr
                && s.kernel_policy == ambient
                && s.subject == ExecutorChoice::Threaded
        })
        .expect("small IR scenario exists for the ambient policy");
    let outcome = run_scenario(scenario, &ToleranceBook::gate_default());
    assert!(outcome.pass, "{}: {}", outcome.id, outcome.detail);
}
