//! Quickstart: compare the DP baseline against Pipe-BD on the paper's
//! default workload (NAS on CIFAR-10, 4× RTX A6000) and verify on a real
//! miniature model that the scheduling change does not alter training.
//!
//! Run with: `cargo run --example quickstart --release`

use pipe_bd::core::exec::{reference, threaded, FuncConfig};
use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::data::SyntheticImageDataset;
use pipe_bd::models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipe_bd::sim::HardwareConfig;
use pipe_bd::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Timing side: simulate one epoch under both schedules. ---------
    let experiment = ExperimentBuilder::nas_cifar10()
        .hardware(HardwareConfig::a6000_server(4))
        .batch_size(256)
        .sim_rounds(32)
        .build()?;

    let dp = experiment.run(Strategy::DataParallel)?;
    let pipebd = experiment.run(Strategy::PipeBd)?;

    println!("workload : {}", dp.workload);
    println!("hardware : {}", dp.hardware);
    println!("DP epoch      : {:7.2}s", dp.epoch_time_s());
    println!("Pipe-BD epoch : {:7.2}s", pipebd.epoch_time_s());
    println!("speedup       : {:7.2}x", pipebd.speedup_over(&dp));
    if let Some(plan) = &pipebd.plan {
        println!("chosen plan   : {plan}");
    }

    // --- Functional side: real threads, channels, real tensors. --------
    let cfg = MiniConfig::default();
    let mut rng = Rng64::seed_from_u64(7);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(128, 8, 4, 3);
    let func = FuncConfig {
        devices: 4,
        steps: 10,
        batch: 8,
        decoupled_updates: true,
        ..FuncConfig::default()
    };
    let golden = reference::run(&teacher, &student, &data, &func)?;
    let parallel = threaded::run(&teacher, &student, &data, &func)?;
    println!(
        "max param diff vs sequential definition: {:e}",
        parallel.max_param_diff(&golden)
    );
    assert_eq!(parallel.max_param_diff(&golden), 0.0);
    println!("Pipe-BD changed the schedule, not the training. ✓");
    Ok(())
}
