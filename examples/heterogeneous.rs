//! Heterogeneous-server scheduling (the paper's stated future direction):
//! run the extended AHD search on a mixed A6000 + 2080 Ti server and show
//! how proportional batch sharding keeps the slower GPUs from stalling the
//! pipeline.
//!
//! Run with: `cargo run --example heterogeneous --release`

use pipe_bd::models::Workload;
use pipe_bd::sched::hetero::{self, HeteroServer};
use pipe_bd::sim::GpuModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let servers = [
        HeteroServer::new(vec![GpuModel::a6000(); 4]),
        HeteroServer::new(vec![
            GpuModel::a6000(),
            GpuModel::a6000(),
            GpuModel::rtx2080ti(),
            GpuModel::rtx2080ti(),
        ]),
        HeteroServer::new(vec![GpuModel::rtx2080ti(); 4]),
    ];

    for workload in [Workload::nas_imagenet(), Workload::compression_cifar10()] {
        println!("== {} ==", workload.label());
        for server in &servers {
            let decision = hetero::search(&workload, server, 256);
            println!("  {:32} period {}", server.label(), decision.estimate);
            println!("    plan   : {}", decision.plan);
            for (stage, split) in decision.plan.stages.iter().zip(decision.splits.iter()) {
                if stage.width() > 1 {
                    let gpus: Vec<&str> = stage
                        .devices
                        .iter()
                        .map(|&d| server.gpus[d].name.as_str())
                        .collect();
                    println!(
                        "    split  : blocks {:?} -> {:?} on {:?}",
                        stage.blocks(),
                        split,
                        gpus
                    );
                }
            }
        }
        println!();
    }

    println!("Mixed servers shard batches proportionally to device throughput,");
    println!("so adding two 2080Tis to two A6000s still speeds up the pipeline");
    println!("instead of letting the slow ranks gate every stage.");
    Ok(())
}
