//! Model-compression workload: distill a miniature dense-conv teacher into
//! a DS-Conv student (the paper's VGG-16 → DS-Conv setting) under every
//! Pipe-BD schedule, then show the paper-scale timing comparison for
//! Compression/ImageNet.
//!
//! Run with: `cargo run --example compression_vgg --release`

use pipe_bd::core::exec::{reference, threaded, FuncConfig};
use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::data::SyntheticImageDataset;
use pipe_bd::models::{mini_student_dsconv, mini_teacher, MiniConfig};
use pipe_bd::sched::StagePlan;
use pipe_bd::sim::HardwareConfig;
use pipe_bd::tensor::Rng64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Functional: one distillation, four schedules, same weights. ----
    let cfg = MiniConfig {
        blocks: 4,
        channels: 8,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(23);
    let teacher = mini_teacher(cfg, &mut rng);
    let student = mini_student_dsconv(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(256, 8, 4, 9);

    let base = FuncConfig {
        devices: 4,
        steps: 25,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        plan: None,
        decoupled_updates: true,
        pool_size: None,
    };
    let golden = reference::run(&teacher, &student, &data, &base)?;

    let schedules: Vec<(&str, FuncConfig)> = vec![
        (
            "TR (barrier)",
            FuncConfig {
                decoupled_updates: false,
                ..base.clone()
            },
        ),
        ("TR+DPU", base.clone()),
        (
            "TR+DPU+AHD (hybrid 2-way split)",
            FuncConfig {
                plan: Some(StagePlan::from_widths(&[(1, 2), (3, 2)], 4, 4)?),
                ..base.clone()
            },
        ),
        (
            "TR+IR (internal relaying)",
            FuncConfig {
                plan: Some(StagePlan::internal_relaying(4, 4)),
                ..base.clone()
            },
        ),
    ];
    println!("miniature compression distillation (4 blocks, 4 device threads):");
    for (name, cfg) in schedules {
        let out = threaded::run(&teacher, &student, &data, &cfg)?;
        println!(
            "  {name:32} final losses {:?}  max diff vs definition {:.2e}",
            out.final_losses()
                .iter()
                .map(|l| format!("{l:.4}"))
                .collect::<Vec<_>>(),
            out.max_param_diff(&golden),
        );
    }

    // --- Paper scale: Compression/ImageNet epoch times. -----------------
    let e = ExperimentBuilder::compression_imagenet()
        .hardware(HardwareConfig::a6000_server(4))
        .build()?;
    println!("\nCompression/ImageNet on 4x A6000 (simulated epoch):");
    let dp = e.run(Strategy::DataParallel)?;
    for s in Strategy::ALL {
        if let Ok(r) = e.run(s) {
            println!(
                "  {:11} {:8.0}s  ({:.2}x over DP)",
                s.label(),
                r.epoch_time_s(),
                r.speedup_over(&dp)
            );
        }
    }
    Ok(())
}
