//! NAS workload end-to-end: run a miniature blockwise supernet search
//! under the threaded Pipe-BD executor (arch parameters train alongside
//! weights), select the final architecture, and report the simulated
//! multi-GPU schedule the same search would use at paper scale.
//!
//! Run with: `cargo run --example nas_search --release`

use pipe_bd::core::exec::{threaded, FuncConfig};
use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::data::SyntheticImageDataset;
use pipe_bd::models::{mini_student_supernet, mini_teacher, MiniConfig};
use pipe_bd::nn::{Layer, ParamKind};
use pipe_bd::sim::HardwareConfig;
use pipe_bd::tensor::Rng64;

const CANDIDATE_NAMES: [&str; 3] = ["conv3x3", "conv5x5", "dsconv3x3"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Miniature blockwise supernet search (real training). ----------
    let cfg = MiniConfig {
        blocks: 4,
        channels: 8,
        batch_norm: false,
    };
    let mut rng = Rng64::seed_from_u64(11);
    let teacher = mini_teacher(cfg, &mut rng);
    let supernet = mini_student_supernet(cfg, &mut rng);
    let data = SyntheticImageDataset::mini(256, 8, 4, 5);
    let func = FuncConfig {
        devices: 4,
        steps: 40,
        batch: 8,
        lr: 0.05,
        momentum: 0.9,
        decoupled_updates: true,
        plan: None,
        pool_size: None,
    };
    let outcome = threaded::run(&teacher, &supernet, &data, &func)?;
    println!("blockwise supernet search, 4 device threads, 40 steps");
    println!(
        "final distillation loss per block: {:?}",
        outcome
            .final_losses()
            .iter()
            .map(|l| format!("{l:.4}"))
            .collect::<Vec<_>>()
    );

    // Architecture selection: per block, the candidate with the highest
    // architecture parameter wins (the paper's Section VI-A procedure).
    println!("selected architecture:");
    for (i, params) in outcome.params.iter().enumerate() {
        // The arch parameter is the MixedOp's trailing [k]-shaped tensor;
        // find it by shape (3 candidates).
        let alpha = params
            .iter()
            .find(|t| t.dims() == [3])
            .expect("supernet blocks carry an arch parameter");
        let best = alpha.argmax().expect("nonempty");
        println!(
            "  block {i}: {}  (alpha = {:?})",
            CANDIDATE_NAMES[best],
            alpha
                .data()
                .iter()
                .map(|v| format!("{v:+.3}"))
                .collect::<Vec<_>>()
        );
    }

    // Sanity: the supernet blocks do carry arch params (kind check).
    let mut probe = mini_student_supernet(cfg, &mut rng);
    let mut kinds = Vec::new();
    probe.block_mut(0).visit_params(&mut |p| kinds.push(p.kind));
    assert!(kinds.contains(&ParamKind::Arch));

    // --- Paper-scale schedule for the same workload. --------------------
    let experiment = ExperimentBuilder::nas_imagenet()
        .hardware(HardwareConfig::a6000_server(4))
        .build()?;
    let decision = experiment.ahd_decision();
    println!("\nat paper scale (NAS/ImageNet, 4x A6000) AHD would schedule:");
    println!(
        "  {}  (estimated step period {})",
        decision.plan, decision.estimate
    );
    let report = experiment.run(Strategy::PipeBd)?;
    let dp = experiment.run(Strategy::DataParallel)?;
    println!(
        "  simulated epoch {:.0}s vs DP {:.0}s -> {:.2}x",
        report.epoch_time_s(),
        dp.epoch_time_s(),
        report.speedup_over(&dp)
    );
    Ok(())
}
