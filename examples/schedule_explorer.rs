//! Schedule explorer: enumerate the whole AHD plan space for a workload,
//! rank plans by estimated step period, render Gantt charts of the best
//! plan and the naive contiguous plan side by side — and persist the
//! profile + chosen plan as artifacts, then *replay* the search from the
//! reloaded profile to demonstrate the measured-profile workflow.
//!
//! Run with: `cargo run --example schedule_explorer --release [blocks]`

use pipe_bd::artifact::{ArtifactStore, CostProfile};
use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::models::Workload;
use pipe_bd::sched::{ahd, hybrid_plan_count, CostModel, Profiler};
use pipe_bd::sim::HardwareConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = HardwareConfig::a6000_server(4);
    // Optional argument: explore a synthetic workload with that many
    // blocks instead of the default NAS/ImageNet workload.
    let workload = match std::env::args().nth(1) {
        Some(arg) => {
            let blocks: usize = arg
                .parse()
                .map_err(|_| format!("expected a block count, got {arg:?}"))?;
            Workload::synthetic(blocks, true)
        }
        None => Workload::nas_imagenet(),
    };
    let b = workload.num_blocks();
    let experiment = ExperimentBuilder::new(workload.clone())
        .hardware(hw.clone())
        .batch_size(256)
        .build()?;

    // Attribution line: recorded schedules/timings depend on which tensor
    // compute path produced any functional numbers alongside them.
    println!("kernel policy: {}", pipe_bd::tensor::kernel_policy());
    let decision = experiment.ahd_decision();
    println!(
        "plan space for B={b} blocks on N={} devices: {} plans (closed form {})",
        hw.num_gpus,
        decision.evaluated.len(),
        hybrid_plan_count(b, hw.num_gpus),
    );

    let mut ranked = decision.evaluated.clone();
    ranked.sort_by_key(|(_, est)| *est);
    println!("\ntop 5 plans by estimated step period:");
    for (plan, est) in ranked.iter().take(5) {
        println!("  {est}  {plan}");
    }
    println!("\nbottom 3 (worst) plans:");
    for (plan, est) in ranked.iter().rev().take(3) {
        println!("  {est}  {plan}");
    }

    println!("\nchosen plan: {}", decision.plan);
    println!("\nPipe-BD (TR+DPU+AHD) schedule, 4 rounds:");
    print!("{}", experiment.gantt(Strategy::PipeBd, 110)?);
    println!("\nplain TR+DPU (contiguous) schedule, 4 rounds:");
    print!("{}", experiment.gantt(Strategy::TrDpu, 110)?);
    println!("\nDP baseline schedule, 4 rounds of the first two phases:");
    print!("{}", experiment.gantt(Strategy::DataParallel, 110)?);
    println!(
        "(digits = teacher block, letters = student block, L = load, U = update, g = grad-share)"
    );

    // Artifact plane: persist the profiling pass and the chosen plan,
    // then reload the profile and replay the AHD search from it — the
    // measured-profile workflow (profile once, schedule many times).
    let store = ArtifactStore::from_env();
    let table =
        Profiler::new(CostModel::new(hw.gpu.clone())).profile(&workload.model, 256, hw.num_gpus);
    let profile = CostProfile::from_table(
        workload.label(),
        hw.gpu.name.clone(),
        256,
        hw.num_gpus,
        &workload.model,
        &table,
    );
    let profile_path = store.save("schedule_explorer_profile", &profile)?;
    let plan_path = store.save("schedule_explorer_plan", &decision.plan)?;
    println!("\nartifact: {}", profile_path.display());
    println!("artifact: {}", plan_path.display());

    let reloaded: CostProfile = store.load("schedule_explorer_profile")?;
    let replayed = ahd::search(&workload, &reloaded.to_table()?, &hw, 256);
    assert_eq!(
        replayed.plan, decision.plan,
        "replaying the AHD search from the persisted profile must pick the same plan"
    );
    println!(
        "replayed AHD search from the persisted profile: same plan ({})",
        replayed.plan
    );
    Ok(())
}
