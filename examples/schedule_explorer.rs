//! Schedule explorer: enumerate the whole AHD plan space for a workload,
//! rank plans by estimated step period, and render Gantt charts of the
//! best plan and the naive contiguous plan side by side.
//!
//! Run with: `cargo run --example schedule_explorer --release [blocks]`

use pipe_bd::core::{ExperimentBuilder, Strategy};
use pipe_bd::models::Workload;
use pipe_bd::sched::hybrid_plan_count;
use pipe_bd::sim::HardwareConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = HardwareConfig::a6000_server(4);
    // Optional argument: explore a synthetic workload with that many
    // blocks instead of the default NAS/ImageNet workload.
    let workload = match std::env::args().nth(1) {
        Some(arg) => {
            let blocks: usize = arg
                .parse()
                .map_err(|_| format!("expected a block count, got {arg:?}"))?;
            Workload::synthetic(blocks, true)
        }
        None => Workload::nas_imagenet(),
    };
    let b = workload.num_blocks();
    let experiment = ExperimentBuilder::new(workload)
        .hardware(hw.clone())
        .batch_size(256)
        .build()?;

    // Attribution line: recorded schedules/timings depend on which tensor
    // compute path produced any functional numbers alongside them.
    println!("kernel policy: {}", pipe_bd::tensor::kernel_policy());
    let decision = experiment.ahd_decision();
    println!(
        "plan space for B={b} blocks on N={} devices: {} plans (closed form {})",
        hw.num_gpus,
        decision.evaluated.len(),
        hybrid_plan_count(b, hw.num_gpus),
    );

    let mut ranked = decision.evaluated.clone();
    ranked.sort_by_key(|(_, est)| *est);
    println!("\ntop 5 plans by estimated step period:");
    for (plan, est) in ranked.iter().take(5) {
        println!("  {est}  {plan}");
    }
    println!("\nbottom 3 (worst) plans:");
    for (plan, est) in ranked.iter().rev().take(3) {
        println!("  {est}  {plan}");
    }

    println!("\nchosen plan: {}", decision.plan);
    println!("\nPipe-BD (TR+DPU+AHD) schedule, 4 rounds:");
    print!("{}", experiment.gantt(Strategy::PipeBd, 110)?);
    println!("\nplain TR+DPU (contiguous) schedule, 4 rounds:");
    print!("{}", experiment.gantt(Strategy::TrDpu, 110)?);
    println!("\nDP baseline schedule, 4 rounds of the first two phases:");
    print!("{}", experiment.gantt(Strategy::DataParallel, 110)?);
    println!(
        "(digits = teacher block, letters = student block, L = load, U = update, g = grad-share)"
    );
    Ok(())
}
